//! The executed continuous-batching scheduler — `core::continuous`'s slot
//! policy, now driving a real engine instead of a cost model.
//!
//! Every iteration is three phases around one ragged decode step:
//!
//! 1. **Admit** (under the state lock): pop queued jobs into free slots
//!    while [`SlotPolicy::can_admit`] holds *and* the page pool can seat
//!    the job's prompt right now. The policy struct is the same one
//!    `simulate_continuous` uses, so the simulator's admission discipline
//!    and the runtime's cannot drift.
//! 2. **Execute** (no lock): prefill newcomers (one prompt pass each),
//!    then advance every resident one token through a single
//!    `forward_rows` pass via [`BatchEngine::decode_step`]. Page growth
//!    for the step is reserved *before* compute; on exhaustion the newest
//!    resident is shed with [`EvictReason::PagesExhausted`] (its exact
//!    token prefix attached) and the step retries — never an abort, never
//!    a hang.
//! 3. **Retire** (under the lock): resolve residents that completed
//!    (`n_tokens` reached or [`eos`](crate::ServeConfig::eos) emitted),
//!    were cancelled, or passed their deadline — mid-batch, without
//!    disturbing neighbours. Counters, latencies, and the per-class
//!    breakers see exactly the same transitions as the single-flight path,
//!    so the `submitted == admitted + rejected` and
//!    `admitted == completed + evicted + deadline_expired` identities hold
//!    unchanged.
//!
//! ## Fault tolerance: prefix replay
//!
//! Engine steps run under `catch_unwind` plus an optional per-step
//! progress deadline ([`ContinuousConfig::step_deadline`]), measured on
//! the server's injected [`Clock`] and scaled by the context length for
//! prefill (one deadline per token-step of work). A panic, a typed
//! [`EngineError::Fault`], or a step that completes past the
//! deadline is a **fault**: the step's tokens (if any) are discarded and
//! every active resident is recovered by *prefix replay* — release its
//! possibly-poisoned pages, then re-prefill the committed prefix
//! (`prompt ++ tokens[..len-1]`), which reproduces the last committed
//! token bit-exactly because greedy decode is a pure function of the
//! committed context. Every poisoned slot is released **before** any
//! replay reserves (replay demand equals pre-fault demand, so every replay
//! fits by construction — the protocol `dsi-verify`'s recovery-program
//! checker proves). A resident that keeps faulting past
//! [`ContinuousConfig::replay_budget`] is evicted with the typed
//! [`EvictReason::EngineFault`]. Each fault's class feeds that class's
//! circuit breaker ([`crate::breaker::BreakerSet`]).
//!
//! Recovery leans on two wrapper guarantees (see
//! [`dsi_core::FaultyEngine`]): an injected panic fires *before* the inner
//! engine runs (its state is untouched under `catch_unwind`), and `Err`
//! from prefill means the slot is free.
//!
//! ## Debug tracer
//!
//! With [`ContinuousConfig::trace`] on (default in debug builds), the loop
//! records its actual lock acquire/release and admit/execute/recover/retire
//! ordering as [`SchedTraceOp`]s, attaches the trace to the final
//! [`SchedReport`], and self-checks it against
//! [`dsi_verify::locks::continuous_scheduler_model`] via
//! [`check_sched_trace`] at exit — the recovery transitions cannot drift
//! from the verified model. `cargo xtask verify` runs [`live_trace_check`]
//! as an end-to-end gate.
//!
//! Because [`PagedEngine`] decode is bit-identical to a solo
//! [`FastSession`](dsi_model::fast::FastSession) run (which is
//! token-identical to `FtSession` at any TP degree), every outcome's token
//! stream — full or partial — is an exact prefix of the request's solo
//! generation. The chaos suite holds serving to that oracle, faults
//! included.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use dsi_core::batch::{BatchEngine, EngineError, FaultClass, FaultyEngine};
use dsi_core::SlotPolicy;
use dsi_model::fast::PackedModel;
use dsi_model::paged::{PageStats, PagedEngine};
use dsi_model::reference::GptModel;
use dsi_sim::clock::Clock;
use dsi_sim::fault::EngineFaultInjector;
use dsi_verify::locks::{check_sched_trace, SchedTraceOp};
use serde::Serialize;

use crate::server::{ContinuousConfig, EvictReason, Job, Outcome, Running, Shared};

/// Page-allocator statistics at drain, for BENCH_serve.json.
#[derive(Debug, Clone, Serialize)]
pub struct PageReport {
    pub pages_total: usize,
    pub page_tokens: usize,
    /// Most pages simultaneously in use over the run.
    pub high_water: usize,
    /// `pages_total - in_use - free` at drain — the allocator identity
    /// makes this 0 by construction, and the drain path asserts it.
    pub fragmentation: usize,
}

/// Scheduler-side counters and histograms, attached to the final
/// `ServeReport` in continuous mode.
#[derive(Debug, Clone, Serialize)]
pub struct SchedReport {
    /// Ragged decode steps executed.
    pub steps: u64,
    /// Prompt passes executed (== admissions into slots).
    pub prefills: u64,
    /// `occupancy_hist[b]` = decode steps that ran with `b` residents.
    pub occupancy_hist: Vec<u64>,
    /// `tokens_per_step_hist[t]` = decode steps that emitted `t` tokens.
    /// (Every resident emits one token per step, so this tracks occupancy
    /// unless sequences retire mid-step in a later scheduler.)
    pub tokens_per_step_hist: Vec<u64>,
    /// Mean residents per decode step.
    pub mean_occupancy: f64,
    /// Requests shed with [`EvictReason::PagesExhausted`].
    pub page_evictions: u64,
    /// Step faults recovered from (each recovery replays every active
    /// resident).
    pub recoveries: u64,
    /// Prefix replays executed (committed-prefix prompt passes).
    pub replays: u64,
    /// Residents evicted with [`EvictReason::EngineFault`] after
    /// exhausting their replay budget.
    pub engine_fault_evictions: u64,
    /// Debug-build scheduler trace (lock + phase ordering of the live
    /// worker); empty when tracing is off. Checked against the verified
    /// model by [`check_sched_trace`].
    pub trace: Vec<SchedTraceOp>,
    pub pages: PageReport,
}

/// One admitted sequence resident in an engine slot.
struct Resident {
    job: Job,
    /// Generated tokens so far (first one from prefill). Always a
    /// committed, bit-exact prefix of the request's solo generation —
    /// faulted steps never append.
    tokens: Vec<usize>,
    /// Whether the engine currently holds this slot's sequence (pages
    /// reserved). False between a recovery release and its replay.
    seated: bool,
    /// Recovery attempts charged against
    /// [`ContinuousConfig::replay_budget`].
    replays: u32,
    /// Admission order; page-exhaustion sheds the largest (newest first).
    admit_seq: u64,
}

enum Retire {
    Completed,
    Cancelled,
    DeadlineExpired,
    PagesExhausted,
    EngineFault { class: FaultClass, msg: String },
}

/// Outcome of one guarded engine call.
enum StepVerdict<T> {
    Ok(T),
    OutOfPages,
    Fault { class: FaultClass, msg: String },
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Prefill under `catch_unwind` + the step deadline. A success that lands
/// past the deadline is treated as a timeout fault: the seat is undone
/// (release) and the caller replays — bit-exactness makes the discard
/// safe, and treating lateness as a fault is what lets a stall storm trip
/// the Timeout breaker instead of silently degrading every neighbour.
///
/// Lateness is measured on the injected [`Clock`] (deterministic under a
/// manual clock), and the deadline scales with the context length: a
/// prefill does `prompt.len()` token-steps of work in one call, so a long
/// but healthy prompt pass is not misread as a stall.
fn guarded_prefill<E: BatchEngine>(
    eng: &mut E,
    slot: usize,
    prompt: &[usize],
    deadline: Option<Duration>,
    clock: &Clock,
) -> StepVerdict<usize> {
    let t0 = clock.now_ns();
    let r = catch_unwind(AssertUnwindSafe(|| eng.prefill(slot, prompt)));
    let late = deadline.is_some_and(|d| {
        let budget = (d.as_nanos() as u64).saturating_mul(prompt.len().max(1) as u64);
        clock.now_ns().saturating_sub(t0) > budget
    });
    match r {
        Ok(Ok(tok)) if !late => StepVerdict::Ok(tok),
        Ok(Ok(_)) => {
            // Seated, but past the progress deadline: undo the seat and
            // report a timeout fault (the slot is free again — the
            // prefill contract the caller relies on).
            eng.release(slot);
            StepVerdict::Fault {
                class: FaultClass::Timeout,
                msg: "prefill stalled past the step deadline".to_string(),
            }
        }
        Ok(Err(EngineError::OutOfPages { .. })) => StepVerdict::OutOfPages,
        Ok(Err(EngineError::Fault { class, msg })) => StepVerdict::Fault { class, msg },
        Err(p) => StepVerdict::Fault { class: FaultClass::Panic, msg: panic_msg(p) },
    }
}

/// One ragged decode step under `catch_unwind` + the step deadline. On any
/// fault verdict the contents of `out` are untrustworthy and the caller
/// must discard them and replay every active resident.
fn guarded_decode<E: BatchEngine>(
    eng: &mut E,
    slots: &[usize],
    out: &mut Vec<usize>,
    deadline: Option<Duration>,
    clock: &Clock,
) -> StepVerdict<()> {
    let t0 = clock.now_ns();
    let r = catch_unwind(AssertUnwindSafe(|| eng.decode_step(slots, out)));
    let late =
        deadline.is_some_and(|d| clock.now_ns().saturating_sub(t0) > d.as_nanos() as u64);
    match r {
        Ok(Ok(())) if !late => StepVerdict::Ok(()),
        Ok(Ok(())) => StepVerdict::Fault {
            class: FaultClass::Timeout,
            msg: "decode step stalled past the step deadline".to_string(),
        },
        Ok(Err(EngineError::OutOfPages { .. })) => StepVerdict::OutOfPages,
        Ok(Err(EngineError::Fault { class, msg })) => StepVerdict::Fault { class, msg },
        Err(p) => StepVerdict::Fault { class: FaultClass::Panic, msg: panic_msg(p) },
    }
}

#[derive(Default)]
struct RecoveryCounters {
    recoveries: u64,
    replays: u64,
    engine_fault_evictions: u64,
}

/// Charge one recovery attempt against the resident's budget.
fn charge_replay(r: &mut Resident, counters: &mut RecoveryCounters, budget: u32) -> bool {
    if r.replays >= budget {
        return false;
    }
    r.replays += 1;
    counters.replays += 1;
    true
}

/// Seat (fresh resident: admission prefill) or re-seat (recovery: prefix
/// replay) `resident` into `slot`, retrying injected faults against the
/// replay budget. Returns `Some(retire)` when the resident must be retired
/// instead. On `None` the resident is seated and its last token committed.
fn seat_resident<E: BatchEngine>(
    eng: &mut E,
    slot: usize,
    resident: &mut Resident,
    cont: &ContinuousConfig,
    clock: &Clock,
    fault_events: &mut Vec<FaultClass>,
    counters: &mut RecoveryCounters,
) -> Option<Retire> {
    loop {
        let fresh = resident.tokens.is_empty();
        let ctx: Vec<usize> = if fresh {
            resident.job.prompt.clone()
        } else {
            // The committed engine context: prompt plus every generated
            // token except the last (whose KV row is only materialized by
            // the step that consumes it).
            resident
                .job
                .prompt
                .iter()
                .chain(&resident.tokens[..resident.tokens.len() - 1])
                .copied()
                .collect()
        };
        match guarded_prefill(eng, slot, &ctx, cont.step_deadline, clock) {
            StepVerdict::Ok(tok) => {
                if fresh {
                    resident.tokens.push(tok);
                } else {
                    debug_assert_eq!(
                        tok,
                        *resident.tokens.last().expect("replayed resident has tokens"),
                        "prefix replay must be bit-exact"
                    );
                }
                resident.seated = true;
                return None;
            }
            StepVerdict::OutOfPages if fresh => {
                // Admission checked the fit under the lock, but an
                // injected allocator storm (or a broken invariant) can
                // still surface here: shed typed rather than crash.
                return Some(Retire::PagesExhausted);
            }
            StepVerdict::OutOfPages => {
                // Real exhaustion is impossible during replay: every
                // poisoned slot was released before any replay reserves
                // and replay demand equals pre-fault demand. Only an
                // injected storm reaches this arm; it burns budget like
                // any other fault.
                fault_events.push(FaultClass::Memory);
                if !charge_replay(resident, counters, cont.replay_budget) {
                    return Some(Retire::EngineFault {
                        class: FaultClass::Memory,
                        msg: "replay budget exhausted under allocator storm".to_string(),
                    });
                }
            }
            StepVerdict::Fault { class, msg } => {
                fault_events.push(class);
                if !charge_replay(resident, counters, cont.replay_budget) {
                    return Some(Retire::EngineFault { class, msg });
                }
            }
        }
    }
}

struct Tracer {
    on: bool,
    ops: Vec<SchedTraceOp>,
}

impl Tracer {
    fn rec(&mut self, op: SchedTraceOp) {
        if self.on {
            self.ops.push(op);
        }
    }
}

/// The streamed-mode worker: the same scheduler as continuous mode over a
/// [`StreamedEngine`] built by `Server::start_streamed` (weights paged in
/// from the offload tier instead of resident in a `PackedModel`).
/// Engine-fault injection wraps the streamed engine exactly like the paged
/// one, so the chaos harness composes I/O faults (inside the store) with
/// engine faults (at this seam).
pub(crate) fn streamed_worker_loop(
    shared: Arc<Shared>,
    eng: dsi_core::StreamedEngine,
    cont: ContinuousConfig,
    eos: Option<usize>,
    faults: Option<Arc<EngineFaultInjector>>,
) {
    match faults {
        Some(inj) => run_scheduler(shared, FaultyEngine::new(eng, inj), cont, eos),
        None => run_scheduler(shared, eng, cont, eos),
    }
}

pub(crate) fn continuous_worker_loop(
    shared: Arc<Shared>,
    model: Arc<GptModel>,
    cont: ContinuousConfig,
    eos: Option<usize>,
    faults: Option<Arc<EngineFaultInjector>>,
) {
    let pm = PackedModel::pack(&model);
    match faults {
        Some(inj) => {
            let eng = FaultyEngine::new(
                PagedEngine::new(&pm, cont.max_slots, cont.pages_total, cont.page_tokens),
                inj,
            );
            run_scheduler(shared, eng, cont, eos);
        }
        None => {
            let eng = PagedEngine::new(&pm, cont.max_slots, cont.pages_total, cont.page_tokens);
            run_scheduler(shared, eng, cont, eos);
        }
    }
}

fn run_scheduler<E: BatchEngine>(
    shared: Arc<Shared>,
    mut eng: E,
    cont: ContinuousConfig,
    eos: Option<usize>,
) {
    let policy = SlotPolicy::new(cont.max_slots);
    let mut residents: Vec<Option<Resident>> = (0..cont.max_slots).map(|_| None).collect();
    let mut admit_seq = 0u64;
    let mut steps = 0u64;
    let mut prefills = 0u64;
    let mut page_evictions = 0u64;
    let mut counters = RecoveryCounters::default();
    let mut occupancy_hist = vec![0u64; cont.max_slots + 1];
    let mut tokens_per_step_hist = vec![0u64; cont.max_slots + 1];
    let mut tracer = Tracer { on: cont.trace, ops: Vec::new() };

    loop {
        // ---- Phase 1: admit from the queue into free slots (under lock).
        tracer.rec(SchedTraceOp::IterStart);
        let mut newcomers: Vec<(usize, Job)> = Vec::new();
        {
            let mut st = shared.state.lock().unwrap();
            tracer.rec(SchedTraceOp::Acquire);
            loop {
                let resident_count =
                    residents.iter().filter(|r| r.is_some()).count() + newcomers.len();
                if !policy.can_admit(resident_count) {
                    break;
                }
                let Some(job) = st.queue.front() else { break };
                // Seat the prompt only if the pool can take it *now*;
                // otherwise wait for a retirement to free pages. (Queued
                // jobs are never hopeless: submit rejects prompts larger
                // than the whole pool.)
                let need = eng.pages_for(job.prompt.len() + 1);
                let free = eng.kv_stats().map_or(usize::MAX, |s| s.pages_free);
                if need > free {
                    break;
                }
                let job = st.queue.pop_front().unwrap();
                st.inflight_tokens -= job.cost;
                // Stamp the heartbeat before publishing `running`, so the
                // watchdog never reads a stale heartbeat for a fresh job.
                shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                st.running.push(Running { id: job.id, cancel: job.cancel.clone() });
                let slot = (0..residents.len())
                    .find(|&s| {
                        residents[s].is_none() && !newcomers.iter().any(|(t, _)| *t == s)
                    })
                    .expect("can_admit implies a free slot");
                newcomers.push((slot, job));
            }
            if !newcomers.is_empty() {
                tracer.rec(SchedTraceOp::Admit);
            }
            if newcomers.is_empty() && residents.iter().all(|r| r.is_none()) {
                if st.draining && st.queue.is_empty() {
                    drop(st);
                    tracer.rec(SchedTraceOp::Release);
                    break;
                }
                tracer.rec(SchedTraceOp::Wait);
                let st = shared.work.wait(st).unwrap();
                drop(st);
                tracer.rec(SchedTraceOp::Release);
                continue;
            }
            drop(st);
            tracer.rec(SchedTraceOp::Release);
        }

        // ---- Phase 2: execute (no lock held).
        let now = shared.clock.now_ns();
        let mut retired: Vec<(usize, Retire)> = Vec::new();
        // Fault classes observed this iteration; fed to the per-class
        // breakers in phase 3 (one `on_failure` per event, mirroring the
        // single-flight path's one-per-terminal-fault discipline).
        let mut fault_events: Vec<FaultClass> = Vec::new();
        if !newcomers.is_empty() {
            tracer.rec(SchedTraceOp::Execute);
        }
        for (slot, job) in newcomers {
            // A job may be dead on arrival (cancelled or expired while
            // queued) — resolve it without spending a prompt pass, exactly
            // like the single-flight StepCtl check before `begin`.
            let mut resident =
                Resident { job, tokens: Vec::new(), seated: false, replays: 0, admit_seq };
            admit_seq += 1;
            if resident.job.cancel.is_cancelled() {
                residents[slot] = Some(resident);
                retired.push((slot, Retire::Cancelled));
            } else if resident.job.deadline_ns.is_some_and(|d| now >= d) {
                residents[slot] = Some(resident);
                retired.push((slot, Retire::DeadlineExpired));
            } else {
                shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                let retire = seat_resident(
                    &mut eng,
                    slot,
                    &mut resident,
                    &cont,
                    &shared.clock,
                    &mut fault_events,
                    &mut counters,
                );
                match retire {
                    None => prefills += 1,
                    Some(Retire::PagesExhausted) => page_evictions += 1,
                    Some(Retire::EngineFault { .. }) => counters.engine_fault_evictions += 1,
                    Some(_) => unreachable!("seat_resident retires typed page/fault only"),
                }
                residents[slot] = Some(resident);
                if let Some(why) = retire {
                    retired.push((slot, why));
                }
            }
        }

        // Retire checks for residents that finished at prefill (n_tokens
        // reached, EOS on the first token, cancel/deadline between steps).
        scan_retirements(&residents, eos, shared.clock.now_ns(), &mut retired);

        // One ragged decode step over everyone still live.
        let mut active: Vec<usize> = (0..residents.len())
            .filter(|&s| residents[s].is_some() && !retired.iter().any(|(rs, _)| *rs == s))
            .collect();
        if !active.is_empty() {
            tracer.rec(SchedTraceOp::Execute);
            let mut step_out = Vec::with_capacity(active.len());
            loop {
                if active.is_empty() {
                    break;
                }
                step_out.clear();
                match guarded_decode(
                    &mut eng,
                    &active,
                    &mut step_out,
                    cont.step_deadline,
                    &shared.clock,
                ) {
                    StepVerdict::Ok(()) => {
                        occupancy_hist[active.len()] += 1;
                        tokens_per_step_hist[step_out.len()] += 1;
                        steps += 1;
                        shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                        for (r, &slot) in active.iter().enumerate() {
                            residents[slot]
                                .as_mut()
                                .expect("active slot occupied")
                                .tokens
                                .push(step_out[r]);
                        }
                        break;
                    }
                    StepVerdict::OutOfPages => {
                        // Shed the newest resident and retry; nothing
                        // advanced, so every survivor's stream is intact.
                        let victim = *active
                            .iter()
                            .max_by_key(|&&s| {
                                residents[s].as_ref().expect("occupied").admit_seq
                            })
                            .expect("active is non-empty");
                        page_evictions += 1;
                        // Free the victim's pages NOW so the retry can
                        // succeed; outcome delivery waits for phase 3.
                        let v = residents[victim].as_mut().expect("occupied");
                        if v.seated {
                            eng.release(victim);
                            v.seated = false;
                        }
                        retired.push((victim, Retire::PagesExhausted));
                        active.retain(|&s| s != victim);
                    }
                    StepVerdict::Fault { class, msg } => {
                        // The step's output (if any) is discarded; every
                        // active resident's engine state is suspect.
                        // Recover each by prefix replay.
                        tracer.rec(SchedTraceOp::Recover);
                        counters.recoveries += 1;
                        fault_events.push(class);
                        // Release every poisoned slot BEFORE any replay
                        // reserves — replay demand equals pre-fault
                        // demand, so all replays fit (the release-first
                        // protocol dsi-verify's recovery checker proves).
                        for &slot in &active {
                            let r = residents[slot].as_mut().expect("occupied");
                            if r.seated {
                                eng.release(slot);
                                r.seated = false;
                            }
                        }
                        let mut keep = Vec::with_capacity(active.len());
                        for &slot in &active {
                            let r = residents[slot].as_mut().expect("occupied");
                            let retire = if !charge_replay(r, &mut counters, cont.replay_budget)
                            {
                                Some(Retire::EngineFault { class, msg: msg.clone() })
                            } else {
                                seat_resident(
                                    &mut eng,
                                    slot,
                                    r,
                                    &cont,
                                    &shared.clock,
                                    &mut fault_events,
                                    &mut counters,
                                )
                            };
                            match retire {
                                None => {
                                    shared
                                        .progress_ns
                                        .store(shared.clock.now_ns(), Ordering::Release);
                                    keep.push(slot);
                                }
                                Some(why) => {
                                    if matches!(why, Retire::EngineFault { .. }) {
                                        counters.engine_fault_evictions += 1;
                                    } else {
                                        page_evictions += 1;
                                    }
                                    retired.push((slot, why));
                                }
                            }
                        }
                        active = keep;
                    }
                }
            }
            // Post-step retirements: completion, EOS, cancel, deadline.
            scan_retirements(&residents, eos, shared.clock.now_ns(), &mut retired);
        }

        // ---- Phase 3: retire + account (under lock), deliver after.
        let mut deliveries: Vec<(Job, Outcome)> = Vec::new();
        {
            let mut st = shared.state.lock().unwrap();
            tracer.rec(SchedTraceOp::Acquire);
            let now = shared.clock.now_ns();
            // Fault events feed the per-class breakers first, so a probe
            // evicted by a fault of its own class sees Open (not
            // HalfOpen) when its abort is processed below.
            for class in fault_events.drain(..) {
                st.breaker.on_failure(class, now);
            }
            if !retired.is_empty() {
                tracer.rec(SchedTraceOp::Retire);
            }
            for (slot, why) in retired {
                let Resident { job, mut tokens, seated, .. } =
                    residents[slot].take().expect("retired slot occupied");
                if seated {
                    eng.release(slot);
                }
                st.running.retain(|r| r.id != job.id);
                let outcome = match why {
                    Retire::Completed => {
                        tokens.truncate(job.n_tokens);
                        st.counters.completed += 1;
                        let latency_s = (now - job.submit_ns) as f64 / 1e9;
                        st.latencies_s.push(latency_s);
                        st.breaker.on_success(job.probe);
                        Outcome::Completed { tokens, latency_s }
                    }
                    Retire::Cancelled => {
                        st.counters.evicted += 1;
                        if let Some(pc) = job.probe {
                            st.breaker.abort_probe(pc, now);
                        }
                        Outcome::Evicted { partial: tokens, reason: EvictReason::Cancelled }
                    }
                    Retire::DeadlineExpired => {
                        st.counters.deadline_expired += 1;
                        if let Some(pc) = job.probe {
                            st.breaker.abort_probe(pc, now);
                        }
                        Outcome::DeadlineExpired { partial: tokens }
                    }
                    Retire::PagesExhausted => {
                        st.counters.evicted += 1;
                        if let Some(pc) = job.probe {
                            st.breaker.abort_probe(pc, now);
                        }
                        Outcome::Evicted { partial: tokens, reason: EvictReason::PagesExhausted }
                    }
                    Retire::EngineFault { class, msg } => {
                        st.counters.evicted += 1;
                        // The class breaker already counted the underlying
                        // fault events; a probe evicted this way proved
                        // nothing (abort_probe no-ops if the class
                        // breaker re-opened above).
                        if let Some(pc) = job.probe {
                            st.breaker.abort_probe(pc, now);
                        }
                        Outcome::Evicted {
                            partial: tokens,
                            reason: EvictReason::EngineFault { class, msg },
                        }
                    }
                };
                deliveries.push((job, outcome));
            }
            st.pool_pages = eng.kv_stats().map_or(0, |s| s.pages_in_use);
            drop(st);
            tracer.rec(SchedTraceOp::Release);
        }
        for (job, outcome) in deliveries {
            let _ = job.tx.send(outcome);
        }
        shared.idle.notify_all();
    }

    // Loop exit: draining, queue empty, no residents. Publish the
    // scheduler report and hand the final pool identity to drain's
    // asserts.
    let stats = eng.kv_stats().unwrap_or(PageStats {
        pages_total: 0,
        pages_in_use: 0,
        pages_free: 0,
        high_water: 0,
        page_tokens: 0,
    });
    let total_occ: u64 = occupancy_hist.iter().enumerate().map(|(b, &n)| b as u64 * n).sum();
    tracer.rec(SchedTraceOp::IterStart);
    let mut st = shared.state.lock().unwrap();
    tracer.rec(SchedTraceOp::Acquire);
    // The release below follows unconditionally once the report is
    // published; record it now so the attached trace is complete.
    tracer.rec(SchedTraceOp::Release);
    if tracer.on {
        let diags = check_sched_trace(&tracer.ops);
        debug_assert!(diags.is_empty(), "live scheduler trace diverged from model: {diags:#?}");
    }
    st.pool_pages = stats.pages_in_use;
    st.sched_report = Some(SchedReport {
        steps,
        prefills,
        mean_occupancy: if steps > 0 { total_occ as f64 / steps as f64 } else { 0.0 },
        occupancy_hist,
        tokens_per_step_hist,
        page_evictions,
        recoveries: counters.recoveries,
        replays: counters.replays,
        engine_fault_evictions: counters.engine_fault_evictions,
        trace: tracer.ops,
        pages: PageReport {
            pages_total: stats.pages_total,
            page_tokens: stats.page_tokens,
            high_water: stats.high_water,
            fragmentation: stats.pages_total - stats.pages_in_use - stats.pages_free,
        },
    });
    st.worker_done = true;
    drop(st);
    shared.idle.notify_all();
}

/// Append retirements for residents that are complete (token budget or
/// EOS), cancelled, or past deadline — skipping slots already in `out`.
fn scan_retirements(
    residents: &[Option<Resident>],
    eos: Option<usize>,
    now: u64,
    out: &mut Vec<(usize, Retire)>,
) {
    for (slot, r) in residents.iter().enumerate() {
        let Some(r) = r else { continue };
        if r.tokens.is_empty() || out.iter().any(|(s, _)| *s == slot) {
            continue;
        }
        if r.tokens.len() >= r.job.n_tokens
            || (eos.is_some() && r.tokens.last() == eos.as_ref())
        {
            out.push((slot, Retire::Completed));
        } else if r.job.cancel.is_cancelled() {
            out.push((slot, Retire::Cancelled));
        } else if r.job.deadline_ns.is_some_and(|d| now >= d) {
            out.push((slot, Retire::DeadlineExpired));
        }
    }
}

/// End-to-end tracer gate for `cargo xtask verify`: run a short continuous
/// serve with tracing forced on — batched completions, a cancel, an idle
/// park, a drain — and diff the live scheduler's recorded trace against
/// the verified lock model. Returns the diagnostics (empty = clean).
pub fn live_trace_check() -> Vec<dsi_verify::Diagnostic> {
    use crate::server::{EngineMode, Request, ServeConfig, Server};
    let model = Arc::new(GptModel::random(dsi_model::zoo::tiny(2), 7));
    let mut cfg = ServeConfig::new(1);
    cfg.mode = EngineMode::Continuous(ContinuousConfig {
        max_slots: 2,
        pages_total: 32,
        page_tokens: 4,
        trace: true,
        ..ContinuousConfig::default()
    });
    let srv = Server::start(model, cfg);
    let tickets: Vec<_> = (0..3)
        .map(|i| {
            srv.submit(Request { prompt: vec![i + 1, i + 2], n_tokens: 4, deadline: None })
                .expect("admission")
        })
        .collect();
    let cancelled = srv
        .submit(Request { prompt: vec![9, 9], n_tokens: 16, deadline: None })
        .expect("admission");
    cancelled.cancel();
    for t in tickets {
        t.wait();
    }
    cancelled.wait();
    // Let the scheduler park at least once before draining, so the trace
    // contains the idle Wait shape too.
    std::thread::sleep(Duration::from_millis(10));
    let report = srv.drain(Duration::from_secs(5));
    let trace = report.scheduler.expect("continuous mode attaches a scheduler report").trace;
    check_sched_trace(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_sim::clock::ManualClock;

    /// Stub engine that advances a manual clock by a fixed amount inside
    /// every call — the deterministic stand-in for a slow/stalled step the
    /// review asked the deadline guards to be testable against.
    struct SlowEngine {
        time: ManualClock,
        advance: Duration,
        released: Vec<usize>,
    }

    impl BatchEngine for SlowEngine {
        fn max_slots(&self) -> usize {
            1
        }

        fn prefill(&mut self, _slot: usize, _prompt: &[usize]) -> Result<usize, EngineError> {
            self.time.advance(self.advance);
            Ok(7)
        }

        fn decode_step(
            &mut self,
            _slots: &[usize],
            out: &mut Vec<usize>,
        ) -> Result<(), EngineError> {
            self.time.advance(self.advance);
            out.push(7);
            Ok(())
        }

        fn release(&mut self, slot: usize) {
            self.released.push(slot);
        }
    }

    fn slow(advance_ms: u64) -> (SlowEngine, Clock) {
        let (clock, time) = Clock::manual();
        (SlowEngine { time, advance: Duration::from_millis(advance_ms), released: Vec::new() }, clock)
    }

    #[test]
    fn decode_past_deadline_is_a_timeout_fault_under_manual_clock() {
        let deadline = Some(Duration::from_millis(10));
        let mut out = Vec::new();

        let (mut eng, clock) = slow(20);
        let v = guarded_decode(&mut eng, &[0], &mut out, deadline, &clock);
        assert!(
            matches!(v, StepVerdict::Fault { class: FaultClass::Timeout, .. }),
            "a 20ms step against a 10ms deadline must be a timeout fault"
        );

        let (mut eng, clock) = slow(5);
        out.clear();
        let v = guarded_decode(&mut eng, &[0], &mut out, deadline, &clock);
        assert!(matches!(v, StepVerdict::Ok(())), "a 5ms step is on time");
        assert_eq!(out, [7]);
    }

    #[test]
    fn prefill_deadline_scales_with_context_length() {
        let deadline = Some(Duration::from_millis(10));

        // 4 context tokens buy a 40ms budget: a 20ms prefill is healthy,
        // not a stall — the long-prompt false-positive the review flagged.
        let (mut eng, clock) = slow(20);
        let v = guarded_prefill(&mut eng, 0, &[1, 2, 3, 4], deadline, &clock);
        assert!(matches!(v, StepVerdict::Ok(7)), "long prompt must get a scaled budget");
        assert!(eng.released.is_empty());

        // 50ms blows even the scaled budget: timeout fault, seat undone.
        let (mut eng, clock) = slow(50);
        let v = guarded_prefill(&mut eng, 0, &[1, 2, 3, 4], deadline, &clock);
        assert!(
            matches!(v, StepVerdict::Fault { class: FaultClass::Timeout, .. }),
            "a stalled prefill must still be caught"
        );
        assert_eq!(eng.released, [0], "late prefill must release its seat");
    }
}
