//! The serving runtime: bounded admission, deadlines, watchdog, drain.
//!
//! [`Server`] fronts one decode engine with the overload machinery a
//! production inference endpoint needs and the underlying engine alone
//! cannot provide. Two engine modes share every admission/accounting/drain
//! path ([`EngineMode`]):
//!
//! * **Single-flight** — one request at a time over the fault-tolerant
//!   tensor-parallel [`FtSession`](dsi_parallel::supervisor::FtSession)
//!   (the PR-5 runtime, still the default).
//! * **Continuous** — iteration-level batching over a multi-slot
//!   [`PagedEngine`](dsi_model::paged::PagedEngine): the worker admits from
//!   the queue into in-flight slots *every step*, decodes all residents
//!   through one ragged M-row pass, and retires sequences at
//!   EOS/deadline/cancel mid-batch (see [`crate::scheduler`]). KV admission
//!   is page-granular: a request is admitted on its **prompt pages** only,
//!   and per-step growth is reserved page-by-page at decode time — failure
//!   there surfaces as a typed [`EvictReason::PagesExhausted`] eviction,
//!   never an abort.
//!
//! * **Bounded admission** — [`Server::submit`] either admits a request
//!   into a bounded queue or rejects it *typed* ([`Rejected`]): the queue
//!   is full, the KV-memory budget is exhausted, the circuit breaker is
//!   open, or the server is draining. Rejection is O(1) under one lock —
//!   an overloaded server stays responsive precisely because saying "no"
//!   is cheap.
//! * **KV-memory admission** — each request's cost is its context length
//!   (`prompt + n_tokens`, the KV rows it will pin); admission keeps the
//!   sum over queued + running requests under `kv_budget_tokens`, the same
//!   accounting `InferenceEngine::max_batch` derives capacity from
//!   (`kv_bytes_per_token × context`). [`kv_budget_tokens`] converts a byte
//!   budget to this unit.
//! * **Deadlines with partial output** — each request can carry a deadline;
//!   the step-wise `StepCtl` surface checks it between decode steps, so an
//!   expired request returns [`Outcome::DeadlineExpired`] with the exact
//!   prefix of tokens generated so far, never a torn step.
//! * **Watchdog** — a sidecar thread watches the progress heartbeat the
//!   decode loop stamps after every token. No progress within
//!   `progress_timeout` means the engine is wedged (or grinding through
//!   fault recovery); the watchdog cancels the request, the supervisor's
//!   bounded collectives guarantee the cancel is observed, and teardown
//!   routes through `FtSession::reset` → `TpSession::dismantle`.
//! * **Graceful drain** — [`Server::drain`] stops admissions (typed
//!   [`Rejected::Draining`]), lets queued work finish within a grace
//!   period, then evicts the remainder and joins every thread. The final
//!   [`ServeReport`] carries always-on accounting invariants:
//!   `submitted == admitted + rejected` and
//!   `admitted == completed + evicted + deadline_expired` — every ticket
//!   resolves exactly once, under every fault storm the chaos suite throws.
//!
//! Lock discipline: ONE mutex ([`State`]) + two condvars (`work`, `idle`)
//! both tied to it, plus lock-free atomics (progress heartbeat, cancel
//! flags). A single-mutex design is trivially deadlock-free; the lock-order
//! audit in `dsi-verify::locks` encodes this as a regression gate.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dsi_model::reference::GptModel;
use dsi_model::GptConfig;
use dsi_parallel::supervisor::{
    FtConfig, FtReport, FtSession, RetryPolicy, StepAbort, StepCtl, StepError,
};
use dsi_sim::clock::{CancelToken, Clock};
use dsi_sim::hw::DType;
use dsi_sim::shmem::CommConfig;
use serde::Serialize;

use dsi_core::{FaultClass, StreamedEngine};
use dsi_sim::fault::EngineFaultInjector;
use dsi_zero::offload::{OffloadConfig, OffloadError, OffloadStore};

use crate::breaker::{BreakerConfig, BreakerSet, SetAdmission};
use crate::scheduler::{continuous_worker_loop, streamed_worker_loop, SchedReport};

/// Convert a KV byte budget into admission tokens for
/// [`ServeConfig::kv_budget_tokens`], using the same per-token accounting
/// as `InferenceEngine::max_batch` (`2 · hidden · layers · dtype_bytes`).
pub fn kv_budget_tokens(model: &GptConfig, budget_bytes: f64) -> usize {
    (budget_bytes / model.kv_bytes_per_token(DType::Fp16)).floor() as usize
}

/// Which execution engine the worker drives. Admission, deadlines, the
/// breaker, the watchdog, and drain are mode-independent; only the decode
/// discipline and the KV accounting unit change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineMode {
    /// One request at a time over a fault-tolerant `FtSession`. KV
    /// admission reserves the whole request up front
    /// (`prompt + n_tokens` against [`ServeConfig::kv_budget_tokens`]) —
    /// correct for an engine that cannot shed memory mid-request.
    SingleFlight,
    /// Continuous batching over a paged multi-slot engine: admit into
    /// slots every step, ragged M-row decode, mid-batch retirement.
    /// KV admission charges **prompt pages only**; decode growth reserves
    /// page-by-page per step ([`EvictReason::PagesExhausted`] on failure).
    Continuous(ContinuousConfig),
    /// Continuous batching over `dsi_core::StreamedEngine` — weights
    /// streamed from an offload tier under a resident budget, so the
    /// served model's weight file may exceed memory. Same scheduler and
    /// admission as [`EngineMode::Continuous`], but KV is metered at
    /// **token granularity**: configure `page_tokens = 1` and
    /// `pages_total` = the KV token budget (asserted by
    /// [`Server::start_streamed`]). Single-flight discipline is
    /// `max_slots = 1`. Start with [`Server::start_streamed`], not
    /// [`Server::start`] (the engine is built from a weight *file*, and a
    /// failed open must surface as a typed error before any thread
    /// spawns).
    Streamed(ContinuousConfig),
}

/// Sizing of the continuous engine (see [`EngineMode::Continuous`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContinuousConfig {
    /// Sequence slots — the executed `dsi_core::SlotPolicy::max_slots`.
    pub max_slots: usize,
    /// KV pages in the pool, shared by all slots.
    pub pages_total: usize,
    /// Context tokens per page.
    pub page_tokens: usize,
    /// Recovery attempts a resident may consume across its lifetime. An
    /// engine fault replays every active resident from its committed
    /// prefix (one budget charge each); a resident that exhausts the
    /// budget is evicted with the typed [`EvictReason::EngineFault`].
    pub replay_budget: u32,
    /// Per-step progress deadline, measured on [`ServeConfig::clock`]. An
    /// engine step that completes later than this is treated as a
    /// Timeout-class fault: its output is discarded and the residents are
    /// replayed — bounding the latency any single wedged step can inflict
    /// on the whole batch. Decode steps get exactly this budget; a prefill
    /// of `n` context tokens gets `n ×` it (one deadline per token-step of
    /// work), so long healthy prompts are not misread as stalls. `None`
    /// disables the check.
    pub step_deadline: Option<Duration>,
    /// Record the scheduler's lock/phase trace and self-check it against
    /// the verified model at exit (see `dsi_verify::locks`). Defaults on
    /// in debug builds, off in release.
    pub trace: bool,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            max_slots: 8,
            pages_total: 512,
            page_tokens: 16,
            replay_budget: 3,
            step_deadline: None,
            trace: cfg!(debug_assertions),
        }
    }
}

impl ContinuousConfig {
    /// Pages a `tokens`-long context pins.
    pub fn pages_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.page_tokens)
    }
}

/// Serving runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Initial TP degree of the engine (degrades on permanent faults).
    /// Single-flight only: the continuous engine runs the packed
    /// single-process fast path (token streams are TP-invariant, so the
    /// outputs are identical either way).
    pub tp: usize,
    /// Engine discipline; see [`EngineMode`].
    pub mode: EngineMode,
    /// Token id that terminates a generation early (continuous mode
    /// retires the sequence mid-batch the step it appears).
    pub eos: Option<usize>,
    /// Collective configuration (timeout, checksums, fault injection).
    pub comm: CommConfig,
    /// Per-step fault retry/backoff policy.
    pub retry: RetryPolicy,
    /// Longest admissible prompt.
    pub max_prompt: usize,
    /// Bounded admission queue depth (requests waiting, excluding running).
    pub queue_capacity: usize,
    /// KV-memory budget in tokens of context across queued + running
    /// requests; see [`kv_budget_tokens`].
    pub kv_budget_tokens: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Base circuit-breaker configuration, applied to every fault class
    /// (timeout / panic / corruption / memory — each class trips and
    /// probes independently; see [`crate::breaker::BreakerSet`]).
    pub breaker: BreakerConfig,
    /// Per-class overrides of [`ServeConfig::breaker`]: e.g. a longer
    /// open window for memory faults than for timeouts. Last entry wins
    /// per class.
    pub breaker_class_overrides: Vec<(FaultClass, BreakerConfig)>,
    /// Scripted engine-fault injection for the continuous scheduler
    /// (chaos testing): the paged engine is wrapped in
    /// [`dsi_core::FaultyEngine`] driven by this injector. `None` (the
    /// default) runs the engine bare.
    pub engine_faults: Option<Arc<EngineFaultInjector>>,
    /// Watchdog: cancel the running request if no token progress within
    /// this window. `None` disables the watchdog thread entirely.
    pub progress_timeout: Option<Duration>,
    /// Watchdog poll period (wall time; bounds cancel latency).
    pub watchdog_poll: Duration,
    /// Time source for deadlines, the breaker window, latency accounting.
    pub clock: Clock,
}

impl ServeConfig {
    pub fn new(tp: usize) -> Self {
        ServeConfig {
            tp,
            mode: EngineMode::SingleFlight,
            eos: None,
            comm: CommConfig::default(),
            retry: RetryPolicy::default(),
            max_prompt: 64,
            queue_capacity: 16,
            kv_budget_tokens: 4096,
            default_deadline: None,
            breaker: BreakerConfig::default(),
            breaker_class_overrides: Vec::new(),
            engine_faults: None,
            progress_timeout: None,
            watchdog_poll: Duration::from_millis(2),
            clock: Clock::wall(),
        }
    }
}

/// One inference request.
#[derive(Debug, Clone)]
pub struct Request {
    pub prompt: Vec<usize>,
    pub n_tokens: usize,
    /// Per-request deadline, measured from admission; falls back to
    /// [`ServeConfig::default_deadline`] when `None`.
    pub deadline: Option<Duration>,
}

/// Typed admission rejection. Every variant is counted in the final
/// [`ServeReport`]; none of them consume engine time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is at capacity.
    QueueFull,
    /// Admitting this request would exceed the KV-token budget.
    MemoryPressure,
    /// The circuit breaker is open (engine recently fault-storming).
    BreakerOpen,
    /// The server is draining; no new work is accepted.
    Draining,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull => write!(f, "queue full"),
            Rejected::MemoryPressure => write!(f, "kv memory pressure"),
            Rejected::BreakerOpen => write!(f, "circuit breaker open"),
            Rejected::Draining => write!(f, "server draining"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an admitted request was evicted without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictReason {
    /// Terminal engine fault (retries and degradation exhausted) in the
    /// single-flight path.
    Fault(String),
    /// Cancelled — by the client, the watchdog, or drain-grace expiry.
    Cancelled,
    /// Continuous mode: the KV page pool could not grow this sequence and
    /// it was chosen as the shed victim (newest resident first). `partial`
    /// holds the exact prefix generated before the shed.
    PagesExhausted,
    /// Continuous mode: the resident exhausted its prefix-replay budget
    /// ([`ContinuousConfig::replay_budget`]) under repeated engine faults.
    /// `partial` holds the committed prefix — every token in it survived
    /// recovery bit-exact, so it is still a true prefix of the request's
    /// solo generation.
    EngineFault { class: FaultClass, msg: String },
}

/// Terminal outcome of an admitted request. Exactly one `Outcome` is
/// delivered per admitted ticket — the accounting invariant the report
/// asserts.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Full generation; `latency_s` is admission→completion on the serve
    /// clock.
    Completed { tokens: Vec<usize>, latency_s: f64 },
    /// Deadline passed mid-generation; `partial` is the exact token prefix
    /// emitted before the stop (token-identical to an unbounded run).
    DeadlineExpired { partial: Vec<usize> },
    /// Evicted; `partial` as above.
    Evicted { partial: Vec<usize>, reason: EvictReason },
}

/// Handle for one admitted request.
pub struct Ticket {
    pub id: u64,
    cancel: CancelToken,
    rx: mpsc::Receiver<Outcome>,
}

impl Ticket {
    /// Cooperatively cancel this request (observed between decode steps).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the request resolves. Every admitted ticket resolves
    /// exactly once, even across fault storms and drain.
    pub fn wait(self) -> Outcome {
        self.rx.recv().expect("server resolves every admitted ticket")
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<Outcome> {
        self.rx.try_recv().ok()
    }
}

/// Final report from [`Server::drain`].
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    pub submitted: u64,
    pub admitted: u64,
    pub completed: u64,
    pub evicted: u64,
    pub deadline_expired: u64,
    pub rejected_queue_full: u64,
    pub rejected_memory: u64,
    pub rejected_breaker: u64,
    pub rejected_draining: u64,
    /// Times any class breaker transitioned Closed/HalfOpen → Open
    /// (sum over classes).
    pub breaker_opens: u32,
    /// Per-fault-class breaker opens (timeout / panic / corruption /
    /// memory trip independently; see `crate::breaker::BreakerSet`).
    pub breaker_opens_by_class: Vec<(FaultClass, u32)>,
    /// Times the watchdog cancelled a request for lack of progress.
    pub watchdog_fires: u64,
    /// Serve-clock seconds from `Server::start` to drain completion.
    pub wall_s: f64,
    /// Completed requests per serve-clock second.
    pub goodput_rps: f64,
    pub mean_latency_s: f64,
    pub p50_latency_s: f64,
    pub p95_latency_s: f64,
    pub p99_latency_s: f64,
    /// The engine supervisor's own fault accounting.
    pub ft: FtReport,
    /// Continuous mode only: batch-occupancy / tokens-per-step histograms
    /// and page-allocator statistics.
    pub scheduler: Option<SchedReport>,
}

impl ServeReport {
    pub fn rejected_total(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_memory
            + self.rejected_breaker
            + self.rejected_draining
    }
}

pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) prompt: Vec<usize>,
    pub(crate) n_tokens: usize,
    /// Absolute serve-clock deadline.
    pub(crate) deadline_ns: Option<u64>,
    /// Admission cost this job pins while queued — KV *tokens* in
    /// single-flight mode, prompt KV *pages* in continuous mode. Released
    /// when the outcome is delivered (single-flight) or when the job
    /// becomes resident and the page pool takes over (continuous).
    pub(crate) cost: usize,
    pub(crate) cancel: CancelToken,
    /// `Some(class)` when this job is the half-open probe for that fault
    /// class's breaker: completion closes it, a fault-free non-answer
    /// (cancel/deadline/shed) aborts it for an immediate re-probe.
    pub(crate) probe: Option<FaultClass>,
    pub(crate) submit_ns: u64,
    pub(crate) tx: mpsc::Sender<Outcome>,
}

pub(crate) struct Running {
    pub(crate) id: u64,
    pub(crate) cancel: CancelToken,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: u64,
    pub(crate) admitted: u64,
    pub(crate) completed: u64,
    pub(crate) evicted: u64,
    pub(crate) deadline_expired: u64,
    pub(crate) rejected_queue_full: u64,
    pub(crate) rejected_memory: u64,
    pub(crate) rejected_breaker: u64,
    pub(crate) rejected_draining: u64,
    pub(crate) watchdog_fires: u64,
}

pub(crate) struct State {
    pub(crate) queue: VecDeque<Job>,
    /// Admission cost pinned by queued (+ running, in single-flight mode)
    /// jobs, in the unit of [`Job::cost`].
    pub(crate) inflight_tokens: usize,
    /// KV pages held by resident sequences, mirrored from the continuous
    /// engine's pool each scheduler iteration (0 in single-flight mode).
    /// Admission reads `inflight_tokens + pool_pages` against the pool
    /// size.
    pub(crate) pool_pages: usize,
    /// Every in-flight request (one entry in single-flight mode, up to
    /// `max_slots` in continuous mode), keyed by job id.
    pub(crate) running: Vec<Running>,
    pub(crate) draining: bool,
    pub(crate) worker_done: bool,
    pub(crate) breaker: BreakerSet,
    pub(crate) counters: Counters,
    pub(crate) latencies_s: Vec<f64>,
    pub(crate) ft_report: Option<FtReport>,
    pub(crate) sched_report: Option<SchedReport>,
    pub(crate) next_id: u64,
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<State>,
    /// Worker parks here when the queue is empty.
    pub(crate) work: Condvar,
    /// Drain and the watchdog park here; notified on every job completion.
    pub(crate) idle: Condvar,
    /// Progress heartbeat: serve-clock ns of the last emitted token (or job
    /// start). Written by the worker between decode steps, read by the
    /// watchdog.
    pub(crate) progress_ns: AtomicU64,
    pub(crate) clock: Clock,
}

/// Fresh shared state for a server, mode-independent (used by both
/// [`Server::start`] and [`Server::start_streamed`]).
fn new_shared(cfg: &ServeConfig) -> Arc<Shared> {
    Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            inflight_tokens: 0,
            pool_pages: 0,
            running: Vec::new(),
            draining: false,
            worker_done: false,
            breaker: BreakerSet::new(cfg.breaker.clone(), &cfg.breaker_class_overrides),
            counters: Counters::default(),
            latencies_s: Vec::new(),
            ft_report: None,
            sched_report: None,
            next_id: 0,
        }),
        work: Condvar::new(),
        idle: Condvar::new(),
        progress_ns: AtomicU64::new(0),
        clock: cfg.clock.clone(),
    })
}

/// Spawn the progress watchdog, if configured.
fn spawn_watchdog(cfg: &ServeConfig, shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    cfg.progress_timeout.map(|timeout| {
        let shared = Arc::clone(shared);
        let poll = cfg.watchdog_poll;
        std::thread::Builder::new()
            .name("dsi-serve-watchdog".into())
            .spawn(move || watchdog_loop(shared, timeout, poll))
            .expect("spawn serve watchdog")
    })
}

/// The serving runtime. Owns a worker thread (which owns the engine) and an
/// optional watchdog thread; see the module docs for the full contract.
pub struct Server {
    shared: Arc<Shared>,
    cfg: ServeConfig,
    start_ns: u64,
    worker: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Spawn the runtime over `model`. The engine group itself is built
    /// lazily on the first request (inside `FtSession`).
    pub fn start(model: Arc<GptModel>, cfg: ServeConfig) -> Server {
        let shared = new_shared(&cfg);
        let start_ns = cfg.clock.now_ns();

        let worker = {
            let shared = Arc::clone(&shared);
            match cfg.mode {
                EngineMode::SingleFlight => {
                    let ft_cfg =
                        FtConfig { tp: cfg.tp, comm: cfg.comm.clone(), retry: cfg.retry.clone() };
                    let max_prompt = cfg.max_prompt;
                    std::thread::Builder::new()
                        .name("dsi-serve-worker".into())
                        .spawn(move || worker_loop(shared, model, max_prompt, ft_cfg))
                        .expect("spawn serve worker")
                }
                EngineMode::Continuous(cont) => {
                    let eos = cfg.eos;
                    let faults = cfg.engine_faults.clone();
                    std::thread::Builder::new()
                        .name("dsi-serve-scheduler".into())
                        .spawn(move || continuous_worker_loop(shared, model, cont, eos, faults))
                        .expect("spawn serve scheduler")
                }
                EngineMode::Streamed(_) => {
                    panic!("EngineMode::Streamed decodes from a weight file: use Server::start_streamed")
                }
            }
        };

        let watchdog = spawn_watchdog(&cfg, &shared);
        Server { shared, cfg, start_ns, worker: Some(worker), watchdog }
    }

    /// Spawn the runtime over a **weight file** served through the tiered
    /// offload store: `cfg.mode` must be [`EngineMode::Streamed`]. The
    /// store is opened on the caller's thread so a missing/corrupt/
    /// unopenable file (or an injected open fault) surfaces as a typed
    /// `Err` here, before any thread exists. The scheduler, admission,
    /// breakers, watchdog, and drain behave exactly as in continuous mode;
    /// `offload` controls the resident budget, prefetch depth, fetch
    /// deadlines, and I/O fault injection.
    pub fn start_streamed(
        path: impl AsRef<Path>,
        offload: OffloadConfig,
        cfg: ServeConfig,
    ) -> Result<Server, OffloadError> {
        let cont = match cfg.mode {
            EngineMode::Streamed(c) => c,
            _ => panic!("Server::start_streamed requires EngineMode::Streamed"),
        };
        assert_eq!(
            cont.page_tokens, 1,
            "streamed mode meters KV per token: set page_tokens = 1 and pages_total = token budget"
        );
        let store = OffloadStore::open(path, offload)?;
        let eng = StreamedEngine::new(store, cont.max_slots, cont.pages_total);
        let shared = new_shared(&cfg);
        let start_ns = cfg.clock.now_ns();
        let worker = {
            let shared = Arc::clone(&shared);
            let eos = cfg.eos;
            let faults = cfg.engine_faults.clone();
            std::thread::Builder::new()
                .name("dsi-serve-streamer".into())
                .spawn(move || streamed_worker_loop(shared, eng, cont, eos, faults))
                .expect("spawn streamed scheduler")
        };
        let watchdog = spawn_watchdog(&cfg, &shared);
        Ok(Server { shared, cfg, start_ns, worker: Some(worker), watchdog })
    }

    /// Admit or reject `req`. Admission is O(1) under one lock: breaker
    /// check, queue-depth check, KV-budget check, enqueue.
    pub fn submit(&self, req: Request) -> Result<Ticket, Rejected> {
        assert!(!req.prompt.is_empty(), "empty prompt");
        assert!(
            req.prompt.len() <= self.cfg.max_prompt,
            "prompt longer than ServeConfig::max_prompt"
        );
        let mut st = self.shared.state.lock().unwrap();
        st.counters.submitted += 1;
        if st.draining {
            st.counters.rejected_draining += 1;
            return Err(Rejected::Draining);
        }
        let now = self.shared.clock.now_ns();
        let probe = match st.breaker.admit(now) {
            SetAdmission::Admit => None,
            SetAdmission::AdmitProbe(class) => Some(class),
            SetAdmission::Reject => {
                st.counters.rejected_breaker += 1;
                return Err(Rejected::BreakerOpen);
            }
        };
        if st.queue.len() >= self.cfg.queue_capacity {
            if let Some(pc) = probe {
                st.breaker.abort_probe(pc, now);
            }
            st.counters.rejected_queue_full += 1;
            return Err(Rejected::QueueFull);
        }
        // KV admission. Single-flight reserves the whole request in tokens
        // (the engine cannot shed memory mid-request); continuous charges
        // prompt pages only — decode growth is reserved per step by the
        // scheduler, with typed page-exhaustion eviction as the backstop.
        let (cost, over_budget) = match &self.cfg.mode {
            EngineMode::SingleFlight => {
                let cost = req.prompt.len() + req.n_tokens;
                (cost, st.inflight_tokens + cost > self.cfg.kv_budget_tokens)
            }
            EngineMode::Continuous(c) | EngineMode::Streamed(c) => {
                // Prompt + the first generated token, which prefill always
                // materializes.
                let cost = c.pages_for(req.prompt.len() + 1);
                // A request whose prompt alone exceeds the pool could never
                // run; reject it outright rather than wedging the queue.
                let hopeless = cost > c.pages_total;
                (cost, hopeless || st.inflight_tokens + st.pool_pages + cost > c.pages_total)
            }
        };
        if over_budget {
            if let Some(pc) = probe {
                st.breaker.abort_probe(pc, now);
            }
            st.counters.rejected_memory += 1;
            return Err(Rejected::MemoryPressure);
        }

        st.counters.admitted += 1;
        st.inflight_tokens += cost;
        let id = st.next_id;
        st.next_id += 1;
        let cancel = CancelToken::new();
        let (tx, rx) = mpsc::channel();
        let deadline_ns = req
            .deadline
            .or(self.cfg.default_deadline)
            .map(|d| now + d.as_nanos() as u64);
        st.queue.push_back(Job {
            id,
            prompt: req.prompt,
            n_tokens: req.n_tokens,
            deadline_ns,
            cost,
            cancel: cancel.clone(),
            probe,
            submit_ns: now,
            tx,
        });
        drop(st);
        self.shared.work.notify_all();
        Ok(Ticket { id, cancel, rx })
    }

    /// Stop admissions, let in-flight + queued work finish within `grace`
    /// (wall time), evict the rest, join all threads, and return the final
    /// report. Consumes the server.
    pub fn drain(mut self, grace: Duration) -> ServeReport {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.draining = true;
        }
        self.shared.work.notify_all();

        let grace_deadline = std::time::Instant::now() + grace;
        let mut grace_expired = false;
        {
            let mut st = self.shared.state.lock().unwrap();
            while !st.worker_done {
                if !grace_expired && std::time::Instant::now() >= grace_deadline {
                    grace_expired = true;
                    // Evict everything still queued; cancel the running job.
                    while let Some(job) = st.queue.pop_front() {
                        st.inflight_tokens -= job.cost;
                        st.counters.evicted += 1;
                        let _ = job.tx.send(Outcome::Evicted {
                            partial: Vec::new(),
                            reason: EvictReason::Cancelled,
                        });
                    }
                    for run in &st.running {
                        run.cancel.cancel();
                    }
                    self.shared.work.notify_all();
                }
                let wait = if grace_expired {
                    Duration::from_millis(5)
                } else {
                    grace_deadline
                        .saturating_duration_since(std::time::Instant::now())
                        .min(Duration::from_millis(5))
                        .max(Duration::from_micros(100))
                };
                st = self.shared.idle.wait_timeout(st, wait).unwrap().0;
            }
        }
        if let Some(w) = self.worker.take() {
            w.join().expect("serve worker join");
        }
        if let Some(w) = self.watchdog.take() {
            w.join().expect("serve watchdog join");
        }

        let st = self.shared.state.lock().unwrap();
        let c = &st.counters;
        let wall_s = (self.shared.clock.now_ns() - self.start_ns) as f64 / 1e9;
        let mut lat = st.latencies_s.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = if lat.is_empty() { 0.0 } else { lat.iter().sum::<f64>() / lat.len() as f64 };
        let report = ServeReport {
            submitted: c.submitted,
            admitted: c.admitted,
            completed: c.completed,
            evicted: c.evicted,
            deadline_expired: c.deadline_expired,
            rejected_queue_full: c.rejected_queue_full,
            rejected_memory: c.rejected_memory,
            rejected_breaker: c.rejected_breaker,
            rejected_draining: c.rejected_draining,
            breaker_opens: st.breaker.opens(),
            breaker_opens_by_class: st.breaker.opens_by_class().to_vec(),
            watchdog_fires: c.watchdog_fires,
            wall_s,
            goodput_rps: if wall_s > 0.0 { c.completed as f64 / wall_s } else { 0.0 },
            mean_latency_s: mean,
            p50_latency_s: dsi_core::percentile(&lat, 0.50),
            p95_latency_s: dsi_core::percentile(&lat, 0.95),
            p99_latency_s: dsi_core::percentile(&lat, 0.99),
            ft: st.ft_report.clone().unwrap_or_default(),
            scheduler: st.sched_report.clone(),
        };
        // Accounting invariants — always on, under every fault storm: no
        // request is lost, double-counted, or left unresolved.
        assert_eq!(
            report.submitted,
            report.admitted + report.rejected_total(),
            "serve invariant: submitted == admitted + rejected"
        );
        assert_eq!(
            report.admitted,
            report.completed + report.evicted + report.deadline_expired,
            "serve invariant: admitted == completed + evicted + deadline_expired"
        );
        assert_eq!(st.inflight_tokens, 0, "serve invariant: all KV admission cost released");
        assert_eq!(st.pool_pages, 0, "serve invariant: all KV pages released");
        if let Some(sched) = &report.scheduler {
            assert_eq!(sched.pages.fragmentation, 0, "paged KV fragmentation must be zero");
        }
        report
    }
}

fn worker_loop(shared: Arc<Shared>, model: Arc<GptModel>, max_prompt: usize, ft_cfg: FtConfig) {
    let mut session = FtSession::new(model, max_prompt, ft_cfg);
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    // Stamp the heartbeat before publishing `running`, so the
                    // watchdog never reads a stale heartbeat for a fresh job.
                    shared.progress_ns.store(shared.clock.now_ns(), Ordering::Release);
                    st.running.push(Running { id: job.id, cancel: job.cancel.clone() });
                    break Some(job);
                }
                if st.draining {
                    break None;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let Some(job) = job else { break };

        // Fresh context per request (also tears down a faulted group).
        session.reset();
        let ctl = StepCtl {
            cancel: Some(&job.cancel),
            clock: Some(&shared.clock),
            deadline_ns: job.deadline_ns,
            progress_ns: Some(&shared.progress_ns),
        };
        let result = session.generate_bounded(&job.prompt, job.n_tokens, &ctl);
        let now = shared.clock.now_ns();

        let mut st = shared.state.lock().unwrap();
        st.running.clear();
        st.inflight_tokens -= job.cost;
        let outcome = match result {
            Ok(tokens) => {
                st.counters.completed += 1;
                let latency_s = (now - job.submit_ns) as f64 / 1e9;
                st.latencies_s.push(latency_s);
                st.breaker.on_success(job.probe);
                Outcome::Completed { tokens, latency_s }
            }
            Err(e) => match e.abort {
                StepError::Aborted(StepAbort::DeadlineExceeded) => {
                    st.counters.deadline_expired += 1;
                    if let Some(pc) = job.probe {
                        // The probe proved nothing: re-probe immediately.
                        st.breaker.abort_probe(pc, now);
                    }
                    Outcome::DeadlineExpired { partial: e.partial }
                }
                StepError::Aborted(StepAbort::Cancelled) => {
                    st.counters.evicted += 1;
                    if let Some(pc) = job.probe {
                        st.breaker.abort_probe(pc, now);
                    }
                    Outcome::Evicted { partial: e.partial, reason: EvictReason::Cancelled }
                }
                StepError::Fault(f) => {
                    st.counters.evicted += 1;
                    // Route the terminal fault to its class breaker: a
                    // collective timeout trips Timeout, a poisoned worker
                    // trips Panic — independent thresholds, independent
                    // probes.
                    let msg = f.to_string();
                    st.breaker.on_failure(FaultClass::classify(&msg), now);
                    // A probe that faulted in a *different* class proved
                    // nothing about the class it was probing: abort it so
                    // that breaker re-opens for an immediate re-probe
                    // instead of leaking HalfOpen (which would reject all
                    // admissions forever). No-op when the fault was the
                    // probed class — on_failure above already re-opened it.
                    if let Some(pc) = job.probe {
                        st.breaker.abort_probe(pc, now);
                    }
                    Outcome::Evicted { partial: e.partial, reason: EvictReason::Fault(msg) }
                }
            },
        };
        drop(st);
        // Delivery outside the lock; a dropped ticket is not an error.
        let _ = job.tx.send(outcome);
        shared.idle.notify_all();
    }

    // Tear the group down with bounded joins, then publish the engine's
    // fault report for the final ServeReport.
    session.reset();
    let mut st = shared.state.lock().unwrap();
    st.ft_report = Some(session.report().clone());
    st.worker_done = true;
    drop(st);
    shared.idle.notify_all();
}

fn watchdog_loop(shared: Arc<Shared>, timeout: Duration, poll: Duration) {
    let timeout_ns = timeout.as_nanos() as u64;
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.worker_done {
            return;
        }
        if !st.running.is_empty() {
            let now = shared.clock.now_ns();
            let last = shared.progress_ns.load(Ordering::Acquire);
            if now.saturating_sub(last) > timeout_ns {
                // The heartbeat is engine-wide: a stalled step wedges every
                // resident, so cancel them all and count one fire.
                let mut fired = false;
                for run in &st.running {
                    if !run.cancel.is_cancelled() {
                        run.cancel.cancel();
                        fired = true;
                    }
                }
                if fired {
                    st.counters.watchdog_fires += 1;
                }
            }
        }
        st = shared.idle.wait_timeout(st, poll).unwrap().0;
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;
    use dsi_sim::fault::{FaultKind, FaultPlan, FaultSite, FaultSpec};

    fn tiny_model() -> Arc<GptModel> {
        Arc::new(GptModel::random(zoo::tiny(2), 11))
    }

    fn quiet_cfg(tp: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(tp);
        cfg.comm.timeout = Duration::from_secs(2);
        cfg
    }

    /// A plan that wedges rank 1 for `millis` at its `epoch`-th barrier
    /// crossing — with a comm timeout above `millis` this is "slow", with
    /// one below it is a detected fault.
    fn stall_plan(epoch: u64, millis: u64) -> FaultPlan {
        FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch },
            kind: FaultKind::Stall { millis },
        }])
    }

    #[test]
    fn completes_requests_and_accounts_them() {
        let srv = Server::start(tiny_model(), quiet_cfg(2));
        let t1 = srv
            .submit(Request { prompt: vec![1, 2, 3], n_tokens: 4, deadline: None })
            .unwrap();
        let t2 = srv
            .submit(Request { prompt: vec![5, 6], n_tokens: 3, deadline: None })
            .unwrap();
        let Outcome::Completed { tokens, .. } = t1.wait() else { panic!("expected completion") };
        assert_eq!(tokens.len(), 4);
        let Outcome::Completed { tokens, .. } = t2.wait() else { panic!("expected completion") };
        assert_eq!(tokens.len(), 3);
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.completed, 2);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.rejected_total(), 0);
        assert!(report.goodput_rps > 0.0);
    }

    #[test]
    fn served_tokens_match_direct_generation() {
        let model = tiny_model();
        let mut oracle = FtSession::new(Arc::clone(&model), 64, FtConfig::new(1));
        let expect = oracle.generate(&[1, 2, 3], 5).unwrap();

        let srv = Server::start(model, quiet_cfg(1));
        let t = srv
            .submit(Request { prompt: vec![1, 2, 3], n_tokens: 5, deadline: None })
            .unwrap();
        let Outcome::Completed { tokens, .. } = t.wait() else { panic!("expected completion") };
        assert_eq!(tokens, expect);
        srv.drain(Duration::from_secs(5));
    }

    #[test]
    fn queue_full_and_memory_pressure_reject_typed() {
        let mut cfg = quiet_cfg(2);
        cfg.queue_capacity = 1;
        cfg.kv_budget_tokens = 20;
        // Wedge the first request (slow, not faulted) so admission state is
        // deterministic while we probe the limits.
        cfg.comm.injector = Some(Arc::new(stall_plan(0, 150).injector()));
        let srv = Server::start(tiny_model(), cfg);

        let t = srv
            .submit(Request { prompt: vec![1; 8], n_tokens: 8, deadline: None })
            .unwrap();
        // Let the worker pop it (it is now wedged mid-prompt, queue empty).
        std::thread::sleep(Duration::from_millis(30));
        // Another 16-token request would breach the 20-token KV budget.
        assert_eq!(
            srv.submit(Request { prompt: vec![1; 8], n_tokens: 8, deadline: None }).err(),
            Some(Rejected::MemoryPressure)
        );
        // Fill the single queue slot, then overflow it.
        let t2 = srv.submit(Request { prompt: vec![1], n_tokens: 1, deadline: None }).unwrap();
        assert_eq!(
            srv.submit(Request { prompt: vec![1], n_tokens: 1, deadline: None }).err(),
            Some(Rejected::QueueFull)
        );
        assert!(matches!(t.wait(), Outcome::Completed { .. }));
        assert!(matches!(t2.wait(), Outcome::Completed { .. }));
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.admitted, 2);
        assert_eq!(report.rejected_memory, 1);
        assert_eq!(report.rejected_queue_full, 1);
    }

    #[test]
    fn client_cancel_evicts_and_session_survives() {
        let mut cfg = quiet_cfg(2);
        cfg.comm.injector = Some(Arc::new(stall_plan(0, 150).injector()));
        let srv = Server::start(tiny_model(), cfg);
        let t = srv
            .submit(Request { prompt: vec![1, 2], n_tokens: 8, deadline: None })
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        t.cancel();
        let Outcome::Evicted { reason, .. } = t.wait() else { panic!("expected eviction") };
        assert_eq!(reason, EvictReason::Cancelled);
        // The engine is reusable after a cancellation.
        let t2 = srv.submit(Request { prompt: vec![3], n_tokens: 2, deadline: None }).unwrap();
        assert!(matches!(t2.wait(), Outcome::Completed { .. }));
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.evicted, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.watchdog_fires, 0);
    }

    #[test]
    fn deadline_expiry_returns_token_identical_partial_prefix() {
        let model = tiny_model();
        let mut oracle = FtSession::new(Arc::clone(&model), 64, FtConfig::new(2));
        let full = oracle.generate(&[1, 2], 40).unwrap();

        let mut cfg = quiet_cfg(2);
        cfg.default_deadline = Some(Duration::from_millis(40));
        // Wedge mid-generation (sequence position 12 ≈ 10 tokens in) for
        // longer than the remaining deadline budget.
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Layer { token: 12, layer: 0 },
            kind: FaultKind::Stall { millis: 150 },
        }]);
        cfg.comm.injector = Some(Arc::new(plan.injector()));
        let srv = Server::start(model, cfg);
        let t = srv
            .submit(Request { prompt: vec![1, 2], n_tokens: 40, deadline: None })
            .unwrap();
        let Outcome::DeadlineExpired { partial } = t.wait() else {
            panic!("expected deadline expiry")
        };
        assert!(!partial.is_empty() && partial.len() < 40);
        assert_eq!(&partial[..], &full[..partial.len()]);
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.deadline_expired, 1);
    }

    #[test]
    fn fault_storm_opens_breaker_then_probe_recovers() {
        let mut cfg = quiet_cfg(2);
        cfg.retry.max_retries = 0; // first fault is terminal
        cfg.retry.backoff_ms = 0;
        cfg.breaker.failure_threshold = 2;
        cfg.breaker.open_window = Duration::from_millis(20);
        cfg.comm.timeout = Duration::from_millis(50);
        // Two scripted stalls longer than the comm timeout: each request's
        // fresh group hits one at its first barrier crossing.
        let plan = FaultPlan::new(vec![
            FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: 0 },
                kind: FaultKind::Stall { millis: 200 },
            },
            FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: 0 },
                kind: FaultKind::Stall { millis: 200 },
            },
        ]);
        cfg.comm.injector = Some(Arc::new(plan.injector()));
        let srv = Server::start(tiny_model(), cfg);

        let mut faulted = 0;
        for _ in 0..2 {
            let t = srv.submit(Request { prompt: vec![1, 2], n_tokens: 3, deadline: None }).unwrap();
            if matches!(t.wait(), Outcome::Evicted { reason: EvictReason::Fault(_), .. }) {
                faulted += 1;
            }
        }
        assert_eq!(faulted, 2, "both scripted faults should be terminal");
        // Breaker now open: fast-fail without touching the engine.
        assert_eq!(
            srv.submit(Request { prompt: vec![1], n_tokens: 1, deadline: None }).err(),
            Some(Rejected::BreakerOpen)
        );
        // After the window the probe is admitted and (faults consumed)
        // succeeds, closing the breaker for everyone.
        std::thread::sleep(Duration::from_millis(25));
        let probe = srv.submit(Request { prompt: vec![1], n_tokens: 2, deadline: None }).unwrap();
        assert!(matches!(probe.wait(), Outcome::Completed { .. }));
        let t = srv.submit(Request { prompt: vec![4], n_tokens: 2, deadline: None }).unwrap();
        assert!(matches!(t.wait(), Outcome::Completed { .. }));

        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.breaker_opens, 1);
        assert_eq!(report.rejected_breaker, 1);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn cross_class_probe_fault_does_not_wedge_admission() {
        let mut cfg = quiet_cfg(2);
        cfg.retry.max_retries = 0; // first fault is terminal
        cfg.retry.backoff_ms = 0;
        cfg.breaker.failure_threshold = 1;
        cfg.breaker.open_window = Duration::from_millis(20);
        cfg.comm.timeout = Duration::from_millis(50);
        // Request 1 hits a stall: a Timeout-class terminal fault opens the
        // Timeout breaker. Its half-open probe then hits a scripted panic —
        // a fault of a *different* class. The probed Timeout breaker must
        // re-open (not leak HalfOpen, which rejects every admission in
        // BreakerSet::admit forever).
        let plan = FaultPlan::new(vec![
            FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: 0 },
                kind: FaultKind::Stall { millis: 200 },
            },
            FaultSpec { rank: 1, site: FaultSite::Barrier { epoch: 0 }, kind: FaultKind::Panic },
        ]);
        cfg.comm.injector = Some(Arc::new(plan.injector()));
        let srv = Server::start(tiny_model(), cfg);

        let t = srv.submit(Request { prompt: vec![1, 2], n_tokens: 3, deadline: None }).unwrap();
        let Outcome::Evicted { reason: EvictReason::Fault(msg), .. } = t.wait() else {
            panic!("expected terminal fault")
        };
        assert_eq!(FaultClass::classify(&msg), FaultClass::Timeout, "{msg}");
        assert_eq!(
            srv.submit(Request { prompt: vec![1], n_tokens: 1, deadline: None }).err(),
            Some(Rejected::BreakerOpen)
        );

        std::thread::sleep(Duration::from_millis(25));
        let probe = srv.submit(Request { prompt: vec![1], n_tokens: 2, deadline: None }).unwrap();
        let Outcome::Evicted { reason: EvictReason::Fault(msg), .. } = probe.wait() else {
            panic!("expected the probe to fault")
        };
        assert_eq!(FaultClass::classify(&msg), FaultClass::Panic, "{msg}");

        // The aborted Timeout probe re-opens with an elapsed window: the
        // very next submit becomes its probe and (faults consumed)
        // completes. Before the fix this submit fast-failed forever.
        let t = srv.submit(Request { prompt: vec![2], n_tokens: 2, deadline: None }).unwrap();
        assert!(matches!(t.wait(), Outcome::Completed { .. }));
        // The panic class opened its own window off the probe's fault;
        // once it elapses its probe clears it and admission is fully open.
        std::thread::sleep(Duration::from_millis(25));
        let t = srv.submit(Request { prompt: vec![3], n_tokens: 2, deadline: None }).unwrap();
        assert!(matches!(t.wait(), Outcome::Completed { .. }));

        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.breaker_opens, 2, "one Timeout open, one Panic open");
        assert_eq!(report.completed, 2);
        assert_eq!(report.evicted, 2);
    }

    #[test]
    fn watchdog_cancels_wedged_request() {
        // A scripted stall below an oversized collective timeout wedges the
        // engine mid-request with no fault detection; the watchdog's
        // progress timeout fires and turns the wedge into a typed eviction.
        let mut cfg = quiet_cfg(2);
        cfg.comm.timeout = Duration::from_secs(30); // detection alone won't save us
        cfg.progress_timeout = Some(Duration::from_millis(40));
        cfg.watchdog_poll = Duration::from_millis(2);
        cfg.comm.injector = Some(Arc::new(stall_plan(0, 300).injector()));
        let srv = Server::start(tiny_model(), cfg);
        let t = srv.submit(Request { prompt: vec![1, 2], n_tokens: 50, deadline: None }).unwrap();
        let Outcome::Evicted { reason, .. } = t.wait() else { panic!("expected eviction") };
        assert_eq!(reason, EvictReason::Cancelled);
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.watchdog_fires, 1);
        assert_eq!(report.evicted, 1);
    }

    #[test]
    fn drain_grace_expiry_evicts_queue_and_running() {
        let mut cfg = quiet_cfg(2);
        cfg.queue_capacity = 8;
        cfg.comm.injector = Some(Arc::new(stall_plan(0, 200).injector()));
        let srv = Server::start(tiny_model(), cfg);
        // First request wedges mid-prompt; three more pile up behind it.
        let slow = srv.submit(Request { prompt: vec![1], n_tokens: 8, deadline: None }).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let queued: Vec<_> = (0..3)
            .map(|i| {
                srv.submit(Request { prompt: vec![i + 1], n_tokens: 8, deadline: None }).unwrap()
            })
            .collect();
        let report = srv.drain(Duration::from_millis(1));
        assert_eq!(report.admitted, 4);
        assert_eq!(report.completed + report.evicted + report.deadline_expired, 4);
        assert_eq!(report.evicted, 4, "grace expiry must evict running + queued");
        assert!(matches!(slow.wait(), Outcome::Evicted { .. }));
        for t in queued {
            assert!(matches!(t.wait(), Outcome::Evicted { .. }));
        }
    }

    fn continuous_cfg(max_slots: usize, pages_total: usize, page_tokens: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(1);
        cfg.mode = EngineMode::Continuous(ContinuousConfig {
            max_slots,
            pages_total,
            page_tokens,
            ..ContinuousConfig::default()
        });
        cfg
    }

    #[test]
    fn continuous_serves_batches_token_identical_to_solo() {
        // The tentpole end-to-end property: requests served concurrently
        // through the paged continuous engine get exactly the tokens a solo
        // FtSession run of the same prompt produces.
        let model = tiny_model();
        let prompts: Vec<Vec<usize>> = (0..6).map(|i| vec![i + 1, i + 2, (i * 7) % 50]).collect();
        let oracle: Vec<Vec<usize>> = prompts
            .iter()
            .map(|p| {
                FtSession::new(Arc::clone(&model), 64, FtConfig::new(1)).generate(p, 5).unwrap()
            })
            .collect();

        let srv = Server::start(Arc::clone(&model), continuous_cfg(4, 64, 4));
        let tickets: Vec<_> = prompts
            .iter()
            .map(|p| {
                srv.submit(Request { prompt: p.clone(), n_tokens: 5, deadline: None }).unwrap()
            })
            .collect();
        for (t, want) in tickets.into_iter().zip(&oracle) {
            let Outcome::Completed { tokens, .. } = t.wait() else { panic!("expected completion") };
            assert_eq!(&tokens, want);
        }
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.completed, 6);
        let sched = report.scheduler.expect("continuous mode attaches a scheduler report");
        assert!(sched.steps > 0 && sched.prefills == 6);
        assert_eq!(sched.pages.fragmentation, 0);
        assert_eq!(sched.occupancy_hist.iter().sum::<u64>(), sched.steps);
        // No batch-formation assert here: on a single-core host the OS can
        // hand the CPU to the scheduler after every submit, legitimately
        // serializing the run (occupancy 1). Batch formation is gated where
        // it is deterministic — `bench_serve --smoke` keeps the engine
        // saturated under a sustained 3× burst and asserts occupancy > 1.
        assert!(sched.mean_occupancy >= 1.0, "mean occupancy {}", sched.mean_occupancy);
    }

    #[test]
    fn continuous_eos_retires_mid_batch() {
        let model = tiny_model();
        let prompt = vec![1usize, 2, 3];
        let full =
            FtSession::new(Arc::clone(&model), 64, FtConfig::new(1)).generate(&prompt, 8).unwrap();
        // Declare the 3rd generated token as EOS: the sequence must stop
        // there (inclusive) while its neighbour runs to its full budget.
        let eos = full[2];
        let truncated: Vec<usize> =
            full.iter().take_while(|&&t| t != eos).chain([&eos]).copied().collect();

        let mut cfg = continuous_cfg(2, 64, 4);
        cfg.eos = Some(eos);
        let srv = Server::start(Arc::clone(&model), cfg);
        let t1 = srv.submit(Request { prompt: prompt.clone(), n_tokens: 8, deadline: None }).unwrap();
        let other = vec![9usize, 9, 8];
        let want_other = {
            let full = FtSession::new(Arc::clone(&model), 64, FtConfig::new(1))
                .generate(&other, 8)
                .unwrap();
            full.iter().take(full.iter().position(|t| *t == eos).map_or(8, |p| p + 1)).copied().collect::<Vec<_>>()
        };
        let t2 = srv.submit(Request { prompt: other, n_tokens: 8, deadline: None }).unwrap();
        let Outcome::Completed { tokens, .. } = t1.wait() else { panic!("expected completion") };
        assert_eq!(tokens, truncated, "EOS sequence stops at the EOS token inclusive");
        let Outcome::Completed { tokens, .. } = t2.wait() else { panic!("expected completion") };
        assert_eq!(tokens, want_other);
        srv.drain(Duration::from_secs(5));
    }

    #[test]
    fn continuous_page_exhaustion_sheds_typed_and_recycles() {
        let model = tiny_model();
        // Pool of 10 pages × 2 tokens = 20 token capacity. The last
        // generated token needs no KV row of its own, so 3 prompt + 19
        // generated needs 21 rows — it must hit `PagesExhausted` mid-decode
        // *under any thread interleaving*: whether it runs solo or shares
        // steps with a neighbour (on a single-core host the two-request
        // contention timing is not reproducible, but a request that can
        // never fit always sheds).
        let srv = Server::start(Arc::clone(&model), continuous_cfg(2, 10, 2));
        let t1 = srv.submit(Request { prompt: vec![1, 2, 3], n_tokens: 19, deadline: None }).unwrap();
        let o1 = t1.wait();
        let Outcome::Evicted { reason: EvictReason::PagesExhausted, partial } = o1 else {
            panic!("oversized request must shed typed, got {o1:?}");
        };
        // The partial is the exact solo prefix up to the last token whose
        // fed predecessor still had a KV row: 20 rows - 3 prompt = 17 fed
        // generated tokens, i.e. 18 emitted.
        let full = FtSession::new(Arc::clone(&model), 64, FtConfig::new(1))
            .generate(&[1, 2, 3], 19)
            .unwrap();
        assert_eq!(partial.len(), 18, "shed at the first reservation past the pool");
        assert_eq!(&full[..partial.len()], &partial[..]);
        // The victim's pages went back to the free list: a request that
        // fits must now run to completion on the recycled pages.
        let t2 = srv.submit(Request { prompt: vec![4, 5, 6], n_tokens: 12, deadline: None }).unwrap();
        let Outcome::Completed { tokens, .. } = t2.wait() else { panic!("expected completion") };
        let want = FtSession::new(Arc::clone(&model), 64, FtConfig::new(1))
            .generate(&[4, 5, 6], 12)
            .unwrap();
        assert_eq!(tokens, want);
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.completed, 1);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.scheduler.unwrap().page_evictions, 1);
    }

    #[test]
    fn continuous_rejects_hopeless_prompt_as_memory_pressure() {
        let srv = Server::start(tiny_model(), continuous_cfg(2, 2, 2));
        // 5 prompt tokens + 1 > 2 pages × 2 tokens: could never be seated.
        assert_eq!(
            srv.submit(Request { prompt: vec![1; 5], n_tokens: 2, deadline: None }).err(),
            Some(Rejected::MemoryPressure)
        );
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.rejected_memory, 1);
        assert_eq!(report.admitted, 0);
    }

    #[test]
    fn continuous_cancel_and_deadline_resolve_typed() {
        let model = tiny_model();
        let srv = Server::start(Arc::clone(&model), continuous_cfg(4, 64, 4));
        // Cancel races the scheduler: it can win before seating (empty
        // prefix), land between steps (partial prefix), or — on a
        // single-core host — lose outright to a request that ran to
        // completion in the gap. Typed either way, never lost, never torn.
        let t = srv.submit(Request { prompt: vec![1, 2], n_tokens: 50, deadline: None }).unwrap();
        t.cancel();
        let full =
            FtSession::new(Arc::clone(&model), 64, FtConfig::new(1)).generate(&[1, 2], 50).unwrap();
        let mut evicted = 0u64;
        match t.wait() {
            Outcome::Evicted { reason, partial } => {
                assert_eq!(reason, EvictReason::Cancelled);
                assert_eq!(&full[..partial.len()], &partial[..], "partial prefix is exact");
                evicted = 1;
            }
            Outcome::Completed { tokens, .. } => assert_eq!(tokens, full),
            other => panic!("unexpected outcome {other:?}"),
        }
        // Already-expired deadline resolves typed with an empty prefix.
        let t = srv
            .submit(Request {
                prompt: vec![3, 4],
                n_tokens: 50,
                deadline: Some(Duration::ZERO),
            })
            .unwrap();
        assert!(matches!(t.wait(), Outcome::DeadlineExpired { .. }));
        let report = srv.drain(Duration::from_secs(5));
        assert_eq!(report.evicted, evicted);
        assert_eq!(report.deadline_expired, 1);
    }

    #[test]
    fn kv_budget_tokens_matches_engine_accounting() {
        let m = zoo::tiny(2);
        // Fp16: 2 bytes/elem × 2 (K,V) × hidden × layers per token.
        let per_tok = 2.0 * m.hidden as f64 * m.layers as f64 * 2.0;
        assert_eq!(kv_budget_tokens(&m, per_tok * 10.0), 10);
        assert_eq!(kv_budget_tokens(&m, per_tok * 10.5), 10);
    }
}
