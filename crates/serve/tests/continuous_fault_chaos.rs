//! Chaos sweep for the fault-tolerant continuous-batching path.
//!
//! Ten seeded scenarios drive the continuous scheduler through scripted
//! engine-fault storms — decode/prefill panics, stalls past the step
//! deadline, page-content corruption, transient page-exhaustion storms
//! (`dsi_sim::fault::EngineFaultPlan::random`) — layered over the usual
//! client churn (cancellations, tight deadlines, ~2× page overload).
//!
//! Every seed must hold the full contract:
//!
//! * **No hangs** — the server drains within the grace window under every
//!   storm (the suite itself is the wall-clock gate in CI).
//! * **Books balance** — `submitted == admitted + rejected` and
//!   `admitted == completed + evicted + deadline_expired`, asserted both
//!   by drain itself and against the client-observed tallies here.
//! * **Bit-exact recovery** — every `Completed` stream is token-identical
//!   to a solo un-faulted session of the same prompt, and every partial
//!   (evicted / expired) is an exact prefix of it: prefix replay never
//!   commits a corrupted token.
//!
//! Across the sweep we additionally require that recovery actually ran
//! (recoveries > 0 and replays > 0 in the scheduler reports) — a sweep
//! that never faults proves nothing.

use std::sync::Arc;
use std::time::Duration;

use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_parallel::supervisor::{FtConfig, FtSession};
use dsi_serve::{
    ContinuousConfig, EngineMode, EvictReason, Outcome, Request, ServeConfig, Server,
};
use dsi_sim::fault::EngineFaultPlan;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn continuous_fault_storms_recover_bit_exact() {
    let model = Arc::new(GptModel::random(zoo::tiny(2), 11));
    let mut total_recoveries = 0u64;
    let mut total_replays = 0u64;
    let mut total_completed = 0u64;
    let mut total_fault_evictions = 0u64;

    for seed in 0u64..10 {
        let mut rng = seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(7);

        // Request mix: prompts of 2–5 tokens, budgets of 3–8 tokens, about
        // 2× the page pool's steady-state capacity so admission, shedding,
        // and recovery all contend.
        let n_requests = 12usize;
        let requests: Vec<(Vec<usize>, usize)> = (0..n_requests)
            .map(|_| {
                let plen = 2 + (splitmix(&mut rng) % 4) as usize;
                let prompt: Vec<usize> =
                    (0..plen).map(|_| (splitmix(&mut rng) % 50) as usize + 1).collect();
                let n_tokens = 3 + (splitmix(&mut rng) % 6) as usize;
                (prompt, n_tokens)
            })
            .collect();
        let mut oracle = FtSession::new(Arc::clone(&model), 64, FtConfig::new(1));
        let oracles: Vec<Vec<usize>> = requests
            .iter()
            .map(|(p, n)| {
                let out = oracle.generate(p, *n).unwrap();
                oracle.reset();
                out
            })
            .collect();

        // Storm: up to 8 faults over the first ~40 engine calls. Stalls run
        // 20–40ms against a 10ms step deadline, so every decode stall is
        // also a Timeout-class fault (prefill budgets scale with context
        // length, so a prefill stall may legitimately land in time);
        // panics, corruption, and exhaustion bursts land on both prefill
        // and decode sites.
        let plan = EngineFaultPlan::random(seed, 8, 40, 40);
        let mut cfg = ServeConfig::new(1);
        cfg.mode = EngineMode::Continuous(ContinuousConfig {
            max_slots: 3,
            pages_total: 24,
            page_tokens: 2,
            replay_budget: 4,
            step_deadline: Some(Duration::from_millis(10)),
            ..ContinuousConfig::default()
        });
        cfg.engine_faults = Some(Arc::new(plan.injector()));
        cfg.max_prompt = 8;
        cfg.queue_capacity = n_requests; // contend on pages, not the queue
        let srv = Server::start(Arc::clone(&model), cfg);

        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for (i, (prompt, n_tokens)) in requests.iter().enumerate() {
            // Churn: every 4th request is cancelled immediately after
            // submit; every 5th carries a deadline tight enough to expire
            // under a stall storm but often met otherwise.
            let deadline = (i % 5 == 4).then(|| Duration::from_millis(60));
            match srv.submit(Request { prompt: prompt.clone(), n_tokens: *n_tokens, deadline }) {
                Ok(t) => {
                    if i % 4 == 3 {
                        t.cancel();
                    }
                    tickets.push((i, t));
                }
                Err(_) => rejected += 1,
            }
            if splitmix(&mut rng) % 10 < 3 {
                std::thread::sleep(Duration::from_millis(splitmix(&mut rng) % 3));
            }
        }
        let report = srv.drain(Duration::from_secs(20));

        let (mut completed, mut evicted, mut expired) = (0u64, 0u64, 0u64);
        for (i, t) in tickets {
            let label = format!("seed {seed} req {i}");
            match t.wait() {
                Outcome::Completed { tokens, .. } => {
                    assert_eq!(
                        tokens, oracles[i],
                        "{label}: completed stream diverged from the un-faulted oracle"
                    );
                    completed += 1;
                }
                Outcome::Evicted { partial, reason } => {
                    assert!(
                        !matches!(reason, EvictReason::Fault(_)),
                        "{label}: single-flight fault reason on the paged path"
                    );
                    if let EvictReason::EngineFault { msg, .. } = &reason {
                        assert!(!msg.is_empty(), "{label}: engine-fault eviction without cause");
                        total_fault_evictions += 1;
                    }
                    assert_eq!(
                        &oracles[i][..partial.len().min(oracles[i].len())],
                        &partial[..],
                        "{label}: evicted partial is not an exact oracle prefix ({reason:?})"
                    );
                    evicted += 1;
                }
                Outcome::DeadlineExpired { partial } => {
                    assert_eq!(
                        &oracles[i][..partial.len().min(oracles[i].len())],
                        &partial[..],
                        "{label}: expired partial is not an exact oracle prefix"
                    );
                    expired += 1;
                }
            }
        }

        // Client-observed tallies must equal the server's books exactly.
        assert_eq!(report.completed, completed, "seed {seed}: completed mismatch");
        assert_eq!(report.evicted, evicted, "seed {seed}: evicted mismatch");
        assert_eq!(report.deadline_expired, expired, "seed {seed}: deadline mismatch");
        assert_eq!(report.rejected_total(), rejected, "seed {seed}: rejected mismatch");
        assert_eq!(report.submitted, n_requests as u64, "seed {seed}: submitted mismatch");
        assert_eq!(
            report.admitted,
            completed + evicted + expired,
            "seed {seed}: admitted requests must all resolve"
        );
        // Per-class opens sum to the headline counter.
        let class_sum: u32 = report.breaker_opens_by_class.iter().map(|(_, n)| n).sum();
        assert_eq!(class_sum, report.breaker_opens, "seed {seed}: per-class opens mismatch");

        let sched = report.scheduler.expect("continuous scheduler report");
        assert_eq!(sched.pages.fragmentation, 0, "seed {seed}: page fragmentation");
        total_recoveries += sched.recoveries;
        total_replays += sched.replays;
        total_completed += completed;
    }

    // The sweep must actually exercise the machinery it claims to cover.
    assert!(total_recoveries > 0, "sweep never triggered a fault recovery");
    assert!(total_replays > 0, "sweep never replayed a committed prefix");
    assert!(
        total_completed > 20,
        "sweep too destructive to prove liveness: {total_completed} completions"
    );
    // Fault evictions (budget exhaustion) are storm-dependent; log-style
    // assert only that the counter is consistent when present.
    let _ = total_fault_evictions;
}
