//! Chaos sweep for the streamed weight-offload serving path.
//!
//! Ten seeded scenarios serve a model **bigger than the resident budget**
//! through `Server::start_streamed` while a scripted I/O fault storm
//! (`dsi_sim::fault::IoFaultPlan::random`) batters the weight tier:
//! slow-tier reads stalling past the step deadline, short reads, panel
//! corruption (re-read under checksum), and failed fetch handles — the
//! last of which kills the prefetch worker outright and forces the store
//! to degrade to synchronous fetch. The usual client churn rides on top:
//! immediate cancellations, tight per-request deadlines, ~2× KV-budget
//! overload.
//!
//! Every seed must hold the full contract:
//!
//! * **No hangs** — the server drains within the grace window under every
//!   storm (the suite's wall-clock timeout is the gate in CI).
//! * **Typed errors only, books balance** — `submitted == admitted +
//!   rejected` and `admitted == completed + evicted + deadline_expired`,
//!   asserted against the client-observed tallies.
//! * **Bit-exact streams** — every `Completed` stream is token-identical
//!   to a resident un-faulted oracle of the same prompt, and every partial
//!   is an exact prefix of it: neither a corrupt panel nor a mid-stream
//!   eviction ever commits a wrong token.

use std::sync::Arc;
use std::time::Duration;

use dsi_model::fast::PackedModel;
use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_serve::{
    ContinuousConfig, EngineMode, EvictReason, Outcome, Request, ServeConfig, Server,
};
use dsi_sim::fault::IoFaultPlan;
use dsi_zero::offload::{OffloadConfig, OffloadStore};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn streamed_io_fault_storms_recover_bit_exact() {
    let model = GptModel::random(zoo::tiny(3), 17);
    let path = std::env::temp_dir()
        .join(format!("dsi_offload_chaos_{}.bin", std::process::id()));
    dsi_model::io::save(&model, &path).expect("save weight file");
    // A resident budget of two panels: the file is strictly bigger, so the
    // sweep churns eviction and demand fetch the whole way through.
    let probe = OffloadStore::open(&path, OffloadConfig::default()).expect("probe open");
    let budget = probe.panel_bytes() * 2;
    assert!(probe.file_bytes() > budget, "model must exceed the resident budget");
    drop(probe);
    let oracle_model = PackedModel::pack(&model);

    let mut total_completed = 0u64;
    let mut total_recoveries = 0u64;
    let mut total_open_failures = 0u64;

    for seed in 0u64..10 {
        let mut rng = seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(3);

        let n_requests = 12usize;
        let requests: Vec<(Vec<usize>, usize)> = (0..n_requests)
            .map(|_| {
                let plen = 2 + (splitmix(&mut rng) % 4) as usize;
                let prompt: Vec<usize> =
                    (0..plen).map(|_| (splitmix(&mut rng) % 50) as usize + 1).collect();
                let n_tokens = 3 + (splitmix(&mut rng) % 6) as usize;
                (prompt, n_tokens)
            })
            .collect();
        let oracles: Vec<Vec<usize>> = requests
            .iter()
            .map(|(p, n)| oracle_model.session(p.len()).generate(p, *n))
            .collect();

        // Storm: up to 10 I/O faults over the first ~80 panel reads.
        // Slow reads run 75–150ms against a 50ms step deadline — well
        // above benign demand-fetch churn (the store's acquire waits in
        // 2ms slices, so a clean 3-layer thrash step stays far under the
        // deadline) — so a stall on a demand fetch is also a
        // Timeout-class engine fault; short
        // reads and corruption exercise the bounded re-read; a failed
        // handle kills the prefetch worker (degrade-to-sync) or types the
        // demand fetch. Read call 0 is the open-time probe fetch, so a
        // storm can also make `start_streamed` itself fail — that must be
        // a typed error, never a hang.
        let plan = IoFaultPlan::random(seed.wrapping_add(101), 10, 80, 150);
        let offload = OffloadConfig {
            resident_budget_bytes: budget,
            prefetch_depth: 1 + (seed as usize % 3),
            faults: Some(Arc::new(plan.injector())),
            ..OffloadConfig::default()
        };
        let mut cfg = ServeConfig::new(1);
        cfg.mode = EngineMode::Streamed(ContinuousConfig {
            max_slots: 3,
            pages_total: 28, // KV tokens: ~2 full requests resident at once
            page_tokens: 1,  // streamed mode meters KV per token
            replay_budget: 4,
            step_deadline: Some(Duration::from_millis(50)),
            ..ContinuousConfig::default()
        });
        cfg.max_prompt = 8;
        cfg.queue_capacity = n_requests; // contend on KV tokens, not the queue
        let srv = match Server::start_streamed(&path, offload, cfg) {
            Ok(srv) => srv,
            Err(e) => {
                // The storm hit the open-time probe fetch: typed, not hung.
                assert!(!e.to_string().is_empty(), "seed {seed}: untyped open failure");
                total_open_failures += 1;
                continue;
            }
        };

        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for (i, (prompt, n_tokens)) in requests.iter().enumerate() {
            let deadline = (i % 5 == 4).then(|| Duration::from_millis(120));
            match srv.submit(Request { prompt: prompt.clone(), n_tokens: *n_tokens, deadline }) {
                Ok(t) => {
                    if i % 4 == 3 {
                        t.cancel();
                    }
                    tickets.push((i, t));
                }
                Err(_) => rejected += 1,
            }
            if splitmix(&mut rng) % 10 < 3 {
                std::thread::sleep(Duration::from_millis(splitmix(&mut rng) % 3));
            }
        }
        let report = srv.drain(Duration::from_secs(20));

        let (mut completed, mut evicted, mut expired) = (0u64, 0u64, 0u64);
        for (i, t) in tickets {
            let label = format!("seed {seed} req {i}");
            match t.wait() {
                Outcome::Completed { tokens, .. } => {
                    assert_eq!(
                        tokens, oracles[i],
                        "{label}: completed stream diverged from the resident oracle"
                    );
                    completed += 1;
                }
                Outcome::Evicted { partial, reason } => {
                    assert!(
                        !matches!(reason, EvictReason::Fault(_)),
                        "{label}: single-flight fault reason on the streamed path"
                    );
                    assert_eq!(
                        &oracles[i][..partial.len().min(oracles[i].len())],
                        &partial[..],
                        "{label}: evicted partial is not an exact oracle prefix ({reason:?})"
                    );
                    evicted += 1;
                }
                Outcome::DeadlineExpired { partial } => {
                    assert_eq!(
                        &oracles[i][..partial.len().min(oracles[i].len())],
                        &partial[..],
                        "{label}: expired partial is not an exact oracle prefix"
                    );
                    expired += 1;
                }
            }
        }

        assert_eq!(report.completed, completed, "seed {seed}: completed mismatch");
        assert_eq!(report.evicted, evicted, "seed {seed}: evicted mismatch");
        assert_eq!(report.deadline_expired, expired, "seed {seed}: deadline mismatch");
        assert_eq!(report.rejected_total(), rejected, "seed {seed}: rejected mismatch");
        assert_eq!(report.submitted, n_requests as u64, "seed {seed}: submitted mismatch");
        assert_eq!(
            report.admitted,
            completed + evicted + expired,
            "seed {seed}: admitted requests must all resolve"
        );
        let class_sum: u32 = report.breaker_opens_by_class.iter().map(|(_, n)| n).sum();
        assert_eq!(class_sum, report.breaker_opens, "seed {seed}: per-class opens mismatch");

        let sched = report.scheduler.expect("streamed scheduler report");
        assert_eq!(sched.pages.fragmentation, 0, "seed {seed}: token-page fragmentation");
        total_recoveries += sched.recoveries;
        total_completed += completed;
    }

    let _ = std::fs::remove_file(&path);

    // The sweep must actually exercise the machinery it claims to cover:
    // storms that reach the decode path show up either as scheduler-level
    // recoveries (stall/typed-fetch faults) or as typed open failures.
    assert!(
        total_recoveries + total_open_failures > 0,
        "sweep never surfaced an I/O fault to the runtime"
    );
    assert!(
        total_completed > 20,
        "sweep too destructive to prove liveness: {total_completed} completions"
    );
}
