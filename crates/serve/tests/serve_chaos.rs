//! Chaos sweep for the serving runtime: seeded arrival streams × scripted
//! fault storms × overload-inducing capacities.
//!
//! Every scenario is derived deterministically from its seed — the request
//! mix, the fault plan, the queue/KV capacities, deadlines, the breaker
//! tuning, whether a client cancels mid-flight, and how patient the drain
//! is. The acceptance criteria, asserted for EVERY scenario:
//!
//! * **zero hangs** — each scenario completes (CI runs this file under a
//!   wall-clock timeout; every collective, retry, and drain path is
//!   bounded);
//! * **accounting invariants** — `submitted == admitted + rejected` and
//!   `admitted == completed + evicted + deadline_expired` (the server
//!   asserts these internally at drain; the harness re-derives them from
//!   the outcomes the *clients* observed, closing the loop);
//! * **every ticket resolves exactly once** — no request is lost under any
//!   storm;
//! * **bounded tail latency** — when deadlines are armed, completed
//!   requests finished within deadline + recovery slack.

use std::sync::Arc;
use std::time::Duration;

use dsi_model::reference::GptModel;
use dsi_model::zoo;
use dsi_parallel::supervisor::{FtConfig, FtSession};
use dsi_serve::{
    ContinuousConfig, EngineMode, EvictReason, Outcome, Rejected, Request, ServeConfig, Server,
};
use dsi_sim::fault::FaultPlan;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Uniform in `[lo, hi)` over the vendored `RngCore` surface.
fn range(rng: &mut impl RngCore, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo)
}

fn chance(rng: &mut impl RngCore, p: f64) -> bool {
    rng.unit_f64() < p
}

/// One seeded scenario, fully derived from `seed`.
struct Scenario {
    seed: u64,
    tp: usize,
    n_requests: usize,
    n_faults: usize,
    queue_capacity: usize,
    kv_budget_tokens: usize,
    deadline: Option<Duration>,
    progress_timeout: Option<Duration>,
    cancel_every: Option<usize>,
    drain_grace: Duration,
    checksum: bool,
}

impl Scenario {
    fn from_seed(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Scenario {
            seed,
            tp: [1, 2, 2, 4][range(&mut rng, 0, 4) as usize],
            n_requests: range(&mut rng, 12, 28) as usize,
            n_faults: range(&mut rng, 0, 5) as usize,
            queue_capacity: range(&mut rng, 1, 6) as usize,
            kv_budget_tokens: range(&mut rng, 24, 160) as usize,
            deadline: if chance(&mut rng, 0.5) {
                Some(Duration::from_millis(range(&mut rng, 5, 60)))
            } else {
                None
            },
            progress_timeout: if chance(&mut rng, 0.5) {
                Some(Duration::from_millis(range(&mut rng, 40, 120)))
            } else {
                None
            },
            cancel_every: if chance(&mut rng, 0.3) {
                Some(range(&mut rng, 3, 6) as usize)
            } else {
                None
            },
            drain_grace: Duration::from_millis([1, 50, 2000][range(&mut rng, 0, 3) as usize]),
            checksum: chance(&mut rng, 0.5),
        }
    }

    fn config(&self) -> ServeConfig {
        let mut cfg = ServeConfig::new(self.tp);
        cfg.max_prompt = 8;
        cfg.queue_capacity = self.queue_capacity;
        cfg.kv_budget_tokens = self.kv_budget_tokens;
        cfg.default_deadline = self.deadline;
        cfg.progress_timeout = self.progress_timeout;
        cfg.comm.timeout = Duration::from_millis(200);
        cfg.comm.checksum = self.checksum;
        cfg.retry.max_retries = 4;
        cfg.retry.backoff_ms = 1;
        cfg.breaker.failure_threshold = 2;
        cfg.breaker.open_window = Duration::from_millis(10);
        if self.n_faults > 0 {
            // Stalls in FaultPlan::random are 1–20 ms — below the comm
            // timeout, so they surface as slowness; Exit/Panic surface as
            // permanent faults, Corrupt as transient when checksummed.
            let plan = FaultPlan::random(self.seed, self.n_faults, self.tp.max(2), 24, 2, 8);
            cfg.comm.injector = Some(Arc::new(plan.injector()));
        }
        cfg
    }
}

/// Run one scenario end to end; returns (completed, evicted,
/// deadline_expired, rejected) as observed by the clients.
fn run_scenario(sc: &Scenario) -> (u64, u64, u64, u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(sc.seed.wrapping_mul(0x9e37_79b9));
    let model = Arc::new(GptModel::random(zoo::tiny(2), sc.seed ^ 0xabcd));
    let srv = Server::start(model, sc.config());

    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..sc.n_requests {
        let prompt_len = range(&mut rng, 1, 6) as usize;
        let req = Request {
            prompt: (0..prompt_len).map(|j| (i + j) % 101).collect(),
            n_tokens: range(&mut rng, 1, 10) as usize,
            deadline: None,
        };
        match srv.submit(req) {
            Ok(t) => {
                if sc.cancel_every.is_some_and(|k| i % k == k - 1) {
                    t.cancel();
                }
                tickets.push(t);
            }
            Err(
                Rejected::QueueFull
                | Rejected::MemoryPressure
                | Rejected::BreakerOpen
                | Rejected::Draining,
            ) => rejected += 1,
        }
        // Seeded jitter: bursts (no sleep) interleaved with brief pauses so
        // scenarios exercise both pile-up and steady-state admission.
        if chance(&mut rng, 0.3) {
            std::thread::sleep(Duration::from_millis(range(&mut rng, 0, 4)));
        }
    }

    let report = srv.drain(sc.drain_grace);

    // Every ticket resolves exactly once; tally what the clients saw.
    let (mut completed, mut evicted, mut expired) = (0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Outcome::Completed { tokens, .. } => {
                assert!(!tokens.is_empty(), "seed {}: completed with no tokens", sc.seed);
                completed += 1;
            }
            Outcome::Evicted { reason, .. } => {
                if let EvictReason::Fault(msg) = &reason {
                    assert!(!msg.is_empty(), "seed {}: fault eviction without a cause", sc.seed);
                }
                evicted += 1;
            }
            Outcome::DeadlineExpired { .. } => expired += 1,
        }
    }

    // Client-observed tallies must equal the server's books exactly.
    let label = format!("seed {}", sc.seed);
    assert_eq!(report.completed, completed, "{label}: completed mismatch");
    assert_eq!(report.evicted, evicted, "{label}: evicted mismatch");
    assert_eq!(report.deadline_expired, expired, "{label}: deadline mismatch");
    assert_eq!(report.rejected_total(), rejected, "{label}: rejected mismatch");
    assert_eq!(report.submitted, sc.n_requests as u64, "{label}: submitted mismatch");
    assert_eq!(
        report.admitted,
        completed + evicted + expired,
        "{label}: admitted requests must all resolve"
    );

    // Bounded tail: with a deadline armed, a completed request can overrun
    // it by at most the in-flight step + recovery slack (collective timeout
    // × retries), never unboundedly.
    if let Some(d) = sc.deadline {
        let slack = 2.0; // comm timeouts + backoff + scheduling, generous
        assert!(
            report.p99_latency_s <= d.as_secs_f64() + slack,
            "{label}: p99 {:.3}s breaches deadline {:?} + slack",
            report.p99_latency_s,
            d
        );
    }
    (completed, evicted, expired, rejected)
}

/// The main sweep: ≥20 seeded scenarios spanning overload, fault storms,
/// client cancellations, impatient drains, and every TP degree.
#[test]
fn chaos_sweep_over_seeded_scenarios() {
    let mut total_completed = 0;
    let mut total_rejected = 0;
    for seed in 0..24u64 {
        let sc = Scenario::from_seed(seed);
        let (completed, _evicted, _expired, rejected) = run_scenario(&sc);
        total_completed += completed;
        total_rejected += rejected;
    }
    // The sweep as a whole must exercise both sides of admission: plenty of
    // requests served, plenty shed. (Per-scenario counts vary by seed.)
    assert!(total_completed > 50, "sweep too lenient: only {total_completed} completions");
    assert!(total_rejected > 0, "sweep never triggered load shedding");
}

/// One seeded continuous-batching scenario: ragged joins/retires over the
/// paged engine under cancel and deadline storms, with every outcome held
/// to the solo-`FtSession` oracle.
struct ContinuousScenario {
    seed: u64,
    /// TP degree of the *oracle* session — serve output must be identical
    /// at every degree (token streams are TP-invariant by construction).
    oracle_tp: usize,
    n_requests: usize,
    max_slots: usize,
    pages_total: usize,
    page_tokens: usize,
    deadline: Option<Duration>,
    cancel_every: Option<usize>,
    eos: bool,
    drain_grace: Duration,
}

impl ContinuousScenario {
    fn from_seed(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00c0ffee);
        ContinuousScenario {
            seed,
            oracle_tp: [1, 2][range(&mut rng, 0, 2) as usize],
            n_requests: range(&mut rng, 8, 18) as usize,
            max_slots: range(&mut rng, 2, 6) as usize,
            // Small pools force page-exhaustion shedding in some seeds;
            // large ones exercise pure batching.
            pages_total: range(&mut rng, 12, 64) as usize,
            page_tokens: [1, 2, 3, 4][range(&mut rng, 0, 4) as usize],
            deadline: if chance(&mut rng, 0.4) {
                Some(Duration::from_millis(range(&mut rng, 2, 30)))
            } else {
                None
            },
            cancel_every: if chance(&mut rng, 0.4) {
                Some(range(&mut rng, 2, 5) as usize)
            } else {
                None
            },
            eos: chance(&mut rng, 0.3),
            drain_grace: Duration::from_millis([1, 2000][range(&mut rng, 0, 2) as usize]),
        }
    }
}

/// The continuous-batching chaos sweep: for every seeded scenario, every
/// ticket resolves typed (zero hangs), the accounting identities hold, and
/// **every byte of output — full or partial — is an exact prefix of the
/// same prompt's solo `FtSession` generation** at tp ∈ {1, 2}. That is the
/// strongest correctness statement continuous batching can make: the
/// scheduler is invisible in the tokens.
#[test]
fn continuous_chaos_token_identity_sweep() {
    let mut total_completed = 0u64;
    let mut total_page_evictions = 0u64;
    for seed in 0..10u64 {
        let mut sc = ContinuousScenario::from_seed(seed);
        if seed == 0 {
            // One deterministic overcommit scenario: an 8-token pool under
            // requests of up to ~17 tokens guarantees the page-exhaustion
            // shed path runs in every sweep.
            sc.pages_total = 8;
            sc.page_tokens = 1;
            sc.max_slots = 4;
            sc.deadline = None;
            sc.cancel_every = None;
            sc.eos = false;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(sc.seed.wrapping_mul(0x5851_f42d));
        let model = Arc::new(GptModel::random(zoo::tiny(2), sc.seed ^ 0x7777));

        // Derive the request mix, then the oracle streams (solo FtSession
        // at the scenario's TP degree — PR 3/4 guarantee TP-invariance, so
        // comparing against tp=2 checks the whole chain).
        let mut requests: Vec<(Vec<usize>, usize)> = (0..sc.n_requests)
            .map(|i| {
                let plen = range(&mut rng, 1, 7) as usize;
                let prompt: Vec<usize> = (0..plen).map(|j| (3 * i + j) % 97).collect();
                let n_tokens = range(&mut rng, 1, 12) as usize;
                (prompt, n_tokens)
            })
            .collect();
        if seed == 0 {
            // Guarantee a mid-decode page exhaustion: the first request's
            // total footprint (prompt + generated) exceeds the 8-page,
            // 1-token-per-page pool, so its decode-step reservation must
            // fail and the shed path fires deterministically.
            requests[0].1 = 14;
        }
        let mut oracle = FtSession::new(Arc::clone(&model), 64, FtConfig::new(sc.oracle_tp));
        let full_streams: Vec<Vec<usize>> = requests
            .iter()
            .map(|(p, n)| {
                let out = oracle.generate(p, *n).unwrap();
                oracle.reset();
                out
            })
            .collect();
        // An EOS id that actually occurs in some stream makes early
        // retirement reachable; truncate the oracles the same way.
        let eos = sc.eos.then(|| full_streams[0][full_streams[0].len() / 2]);
        let oracles: Vec<Vec<usize>> = full_streams
            .iter()
            .map(|s| match eos.and_then(|e| s.iter().position(|t| *t == e)) {
                Some(p) => s[..=p].to_vec(),
                None => s.clone(),
            })
            .collect();

        let mut cfg = ServeConfig::new(1);
        cfg.mode = EngineMode::Continuous(ContinuousConfig {
            max_slots: sc.max_slots,
            pages_total: sc.pages_total,
            page_tokens: sc.page_tokens,
            ..ContinuousConfig::default()
        });
        cfg.eos = eos;
        cfg.max_prompt = 8;
        cfg.queue_capacity = sc.n_requests; // shed on pages, not the queue
        cfg.default_deadline = sc.deadline;
        let srv = Server::start(Arc::clone(&model), cfg);

        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for (i, (prompt, n_tokens)) in requests.iter().enumerate() {
            match srv.submit(Request {
                prompt: prompt.clone(),
                n_tokens: *n_tokens,
                deadline: None,
            }) {
                Ok(t) => {
                    if sc.cancel_every.is_some_and(|k| i % k == k - 1) {
                        t.cancel();
                    }
                    tickets.push((i, t));
                }
                Err(_) => rejected += 1,
            }
            if chance(&mut rng, 0.3) {
                std::thread::sleep(Duration::from_millis(range(&mut rng, 0, 3)));
            }
        }
        let report = srv.drain(sc.drain_grace);

        let (mut completed, mut evicted, mut expired) = (0u64, 0u64, 0u64);
        for (i, t) in tickets {
            let label = format!("seed {seed} req {i} (oracle tp {})", sc.oracle_tp);
            match t.wait() {
                Outcome::Completed { tokens, .. } => {
                    assert_eq!(tokens, oracles[i], "{label}: completed stream diverged");
                    completed += 1;
                }
                Outcome::Evicted { partial, reason } => {
                    assert!(
                        !matches!(
                            reason,
                            EvictReason::Fault(_) | EvictReason::EngineFault { .. }
                        ),
                        "{label}: un-faulted paged engine cannot fault"
                    );
                    assert_eq!(
                        &full_streams[i][..partial.len()],
                        &partial[..],
                        "{label}: evicted partial is not an exact prefix"
                    );
                    evicted += 1;
                }
                Outcome::DeadlineExpired { partial } => {
                    assert_eq!(
                        &full_streams[i][..partial.len()],
                        &partial[..],
                        "{label}: expired partial is not an exact prefix"
                    );
                    expired += 1;
                }
            }
        }
        // Client-observed tallies == the server's books == the identities.
        assert_eq!(report.completed, completed, "seed {seed}");
        assert_eq!(report.evicted, evicted, "seed {seed}");
        assert_eq!(report.deadline_expired, expired, "seed {seed}");
        assert_eq!(report.rejected_total(), rejected, "seed {seed}");
        assert_eq!(report.admitted, completed + evicted + expired, "seed {seed}");
        let sched = report.scheduler.expect("continuous scheduler report");
        assert_eq!(sched.pages.fragmentation, 0, "seed {seed}: fragmentation");
        assert_eq!(
            sched.occupancy_hist.iter().sum::<u64>(),
            sched.steps,
            "seed {seed}: occupancy histogram covers every step"
        );
        total_completed += completed;
        total_page_evictions += sched.page_evictions;
    }
    assert!(total_completed > 30, "sweep too lenient: {total_completed} completions");
    // At least one seed must have actually exercised page shedding.
    assert!(total_page_evictions > 0, "sweep never hit page exhaustion");
}

/// Sustained overload against a tiny queue must shed with typed rejections
/// while the server keeps completing what it admits — and the breaker must
/// stay closed (overload is not a fault).
#[test]
fn overload_sheds_typed_and_keeps_serving() {
    let model = Arc::new(GptModel::random(zoo::tiny(2), 7));
    let mut cfg = ServeConfig::new(2);
    cfg.queue_capacity = 2;
    cfg.kv_budget_tokens = 40;
    cfg.comm.timeout = Duration::from_secs(2);
    let srv = Server::start(model, cfg);

    let mut tickets = Vec::new();
    let mut rejections = 0u64;
    for i in 0..200 {
        match srv.submit(Request { prompt: vec![i % 101], n_tokens: 6, deadline: None }) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QueueFull | Rejected::MemoryPressure) => rejections += 1,
            Err(other) => panic!("unexpected rejection under pure overload: {other}"),
        }
    }
    let report = srv.drain(Duration::from_secs(10));
    assert!(rejections > 0, "200 burst submissions must overflow a 2-deep queue");
    assert_eq!(report.breaker_opens, 0, "overload must not trip the fault breaker");
    for t in tickets {
        assert!(
            matches!(t.wait(), Outcome::Completed { .. }),
            "admitted requests complete under overload"
        );
    }
    assert_eq!(report.completed, report.admitted);
}

/// A storm of permanent faults must open the breaker and fast-fail
/// admissions rather than queueing doomed work — and the server must still
/// drain cleanly with the invariants intact.
#[test]
fn fault_storm_fast_fails_through_breaker() {
    let model = Arc::new(GptModel::random(zoo::tiny(2), 13));
    let mut cfg = ServeConfig::new(2);
    cfg.comm.timeout = Duration::from_millis(100);
    cfg.retry.max_retries = 0;
    cfg.retry.backoff_ms = 0;
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_window = Duration::from_secs(60); // stays open for the test
    // Rank 1 exits at its first barrier crossing, in every group the server
    // builds, until the specs run out: each admitted request meets a
    // permanent fault.
    use dsi_sim::fault::{FaultKind, FaultSite, FaultSpec};
    let plan = FaultPlan::new(
        (0..4)
            .map(|_| FaultSpec {
                rank: 1,
                site: FaultSite::Barrier { epoch: 0 },
                kind: FaultKind::Exit,
            })
            .collect(),
    );
    cfg.comm.injector = Some(Arc::new(plan.injector()));
    let srv = Server::start(model, cfg);

    let mut breaker_rejections = 0u64;
    let mut tickets = Vec::new();
    for i in 0..20 {
        match srv.submit(Request { prompt: vec![1, 2], n_tokens: 4, deadline: None }) {
            Ok(t) => tickets.push(t),
            Err(Rejected::BreakerOpen) => breaker_rejections += 1,
            Err(other) => panic!("request {i}: unexpected rejection {other}"),
        }
        // Let the in-flight request resolve so breaker state is observable.
        std::thread::sleep(Duration::from_millis(30));
    }
    for t in tickets {
        t.wait(); // typed outcome either way; no hangs
    }
    let report = srv.drain(Duration::from_secs(10));
    assert!(report.breaker_opens >= 1, "a permanent-fault storm must open the breaker");
    assert!(breaker_rejections > 0, "an open breaker must fast-fail admissions");
    assert_eq!(report.submitted, 20);
}
