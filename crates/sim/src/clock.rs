//! Deterministic time and cancellation primitives for the serving runtime.
//!
//! The overload machinery above the decode engine — request deadlines, the
//! circuit breaker's open window, the watchdog's progress timeout — is all
//! *time-conditional* control flow. Testing it against `Instant::now()`
//! makes every assertion a race against the scheduler; the chaos suite
//! instead needs the same property the fault injector already has:
//! **seed-reproducible behaviour**. [`Clock`] provides that split: the
//! production configuration reads monotonic wall time, while tests install
//! a [`ManualClock`] they advance explicitly, so "the breaker re-probes
//! after its open window" is a deterministic statement, not a sleep.
//!
//! [`CancelToken`] is the companion primitive: a shared flag a supervisor
//! (the serve worker's watchdog, a draining server, an impatient client)
//! sets, and the step-wise generation loop checks between decode steps —
//! the mechanism that turns "this request is taking too long" into a typed
//! partial result instead of a hung engine.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock: wall time in production, manually advanced
/// in tests. Cloning shares the underlying time source.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic wall time, measured from the stored origin.
    Wall(Instant),
    /// Test time: an explicitly advanced nanosecond counter.
    Manual(Arc<AtomicU64>),
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

impl Clock {
    /// A wall clock whose epoch is the moment of this call.
    pub fn wall() -> Self {
        Clock::Wall(Instant::now())
    }

    /// A manual clock starting at 0, plus the handle that advances it.
    pub fn manual() -> (Self, ManualClock) {
        let cell = Arc::new(AtomicU64::new(0));
        (Clock::Manual(Arc::clone(&cell)), ManualClock(cell))
    }

    /// Nanoseconds since this clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall(origin) => origin.elapsed().as_nanos() as u64,
            Clock::Manual(cell) => cell.load(Ordering::Acquire),
        }
    }
}

/// The advancing handle of a [`Clock::manual`] pair. Tests hold this and
/// move time forward; every `Clock` clone observes the jump immediately.
#[derive(Debug, Clone)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    pub fn advance(&self, by: Duration) {
        self.0.fetch_add(by.as_nanos() as u64, Ordering::AcqRel);
    }

    pub fn set_ns(&self, ns: u64) {
        self.0.store(ns, Ordering::Release);
    }

    pub fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A shared one-way cancellation flag. Once cancelled it stays cancelled;
/// every clone observes the same flag. Checked by step-wise generation
/// between decode steps (and between fault-recovery attempts), so the
/// latency from `cancel()` to the engine yielding is bounded by one step
/// plus one collective timeout — never a hang.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let (clock, handle) = Clock::manual();
        assert_eq!(clock.now_ns(), 0);
        handle.advance(Duration::from_millis(5));
        assert_eq!(clock.now_ns(), 5_000_000);
        handle.set_ns(42);
        assert_eq!(clock.now_ns(), 42);
        // Clones share the time source.
        let c2 = clock.clone();
        handle.advance(Duration::from_nanos(8));
        assert_eq!(c2.now_ns(), 50);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = Clock::wall();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled() && !t2.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t2.is_cancelled());
    }
}
