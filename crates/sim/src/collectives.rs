//! NCCL-style collectives: α–β cost models over a [`Topology`] and
//! *functional* reference implementations over rank-local buffers.
//!
//! The cost side follows the standard ring/pairwise analyses that the paper
//! itself uses: an all-to-all over `p` ranks costs `(p-1)·α + ((p-1)/p)·S/β`,
//! i.e. grows linearly with `p` at fixed message size — "it is not efficient
//! to scale expert parallelism to hundreds of devices ... as the latency
//! increases linearly with the increase in devices" (Sec. V-B). The PCC
//! rewrite replaces it with an all-to-all over `p/L` ranks plus an all-gather
//! over `L` ranks, turning `O(p)` into `O(p/L) + O(L)`.
//!
//! The functional side ([`CommGroup`]) actually moves `f32` data between the
//! per-rank buffers so that schedule rewrites can be checked for
//! *correctness* (PCC must deliver byte-identical results to the flat
//! all-to-all it replaces), not just speed.

use crate::hw::LinkSpec;
use crate::topology::Topology;
use serde::Serialize;

/// Cost of one collective operation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CollectiveCost {
    /// Wall-clock seconds.
    pub time: f64,
    /// Bytes crossing links per participating rank (for bandwidth
    /// accounting).
    pub bytes_on_wire: f64,
}

impl CollectiveCost {
    pub const ZERO: CollectiveCost = CollectiveCost {
        time: 0.0,
        bytes_on_wire: 0.0,
    };
}

/// Cost-model entry points. `bytes` is the full tensor size unless stated
/// otherwise; groups are lists of global ranks.
pub struct Collectives;

impl Collectives {
    /// Ring all-reduce over `group` of a `bytes`-sized tensor
    /// (reduce-scatter + all-gather, each `(n-1)` steps of `bytes/n`).
    pub fn allreduce(topo: &Topology, group: &[usize], bytes: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let link = topo.ring_bottleneck(group);
        let steps = 2 * (n - 1);
        let chunk = bytes / n as f64;
        CollectiveCost {
            time: steps as f64 * (link.latency + chunk / link.bw),
            bytes_on_wire: steps as f64 * chunk,
        }
    }

    /// Ring all-gather: each rank contributes `bytes_per_rank`, everyone ends
    /// with the concatenation.
    pub fn allgather(topo: &Topology, group: &[usize], bytes_per_rank: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let link = topo.ring_bottleneck(group);
        let steps = n - 1;
        CollectiveCost {
            time: steps as f64 * (link.latency + bytes_per_rank / link.bw),
            bytes_on_wire: steps as f64 * bytes_per_rank,
        }
    }

    /// Ring reduce-scatter (same wire traffic as all-gather).
    pub fn reduce_scatter(topo: &Topology, group: &[usize], bytes: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let link = topo.ring_bottleneck(group);
        let steps = n - 1;
        let chunk = bytes / n as f64;
        CollectiveCost {
            time: steps as f64 * (link.latency + chunk / link.bw),
            bytes_on_wire: steps as f64 * chunk,
        }
    }

    /// Flat (pairwise-exchange) all-to-all: each rank holds `bytes_per_rank`
    /// and sends a `1/n` slice to every peer. `(n-1)` rounds; each round's
    /// latency depends on whether the peer is on-node or off-node, which is
    /// what makes this linear in `p` for the small per-token messages of MoE
    /// inference.
    pub fn alltoall(topo: &Topology, group: &[usize], bytes_per_rank: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let chunk = bytes_per_rank / n as f64;
        // Pairwise exchange: in round r, rank i exchanges with rank i^r
        // (hypercube-style); we cost the worst rank per round, which for a
        // symmetric layout is any fixed rank's view. NCCL keeps several
        // messages in flight, so after the first peer each additional round
        // pays only the pipelined marginal latency.
        const PIPELINE: f64 = 0.25;
        let me = group[0];
        let mut time = 0.0;
        let mut wire = 0.0;
        let mut first = true;
        for &peer in group.iter().skip(1) {
            let link = Self::effective_p2p(topo, group, me, peer);
            if first {
                time += link.latency + chunk / link.bw;
                first = false;
            } else {
                // Steady state: limited by message rate or wire bandwidth,
                // whichever is slower.
                time += (link.latency * PIPELINE).max(chunk / link.bw);
            }
            wire += chunk;
        }
        CollectiveCost {
            time,
            bytes_on_wire: wire,
        }
    }

    /// The PCC (parallelism-coordinated communication) all-to-all of
    /// Sec. V-B: with tensor-parallel degree `tp`, data is replicated across
    /// the `tp` ranks of each TP group, so the all-to-all only needs to run
    /// within the `p/tp` ranks sharing the same TP slot, followed by an
    /// all-gather across the `tp` ranks to restore replication.
    ///
    /// Returns (total, alltoall part, allgather part).
    pub fn pcc_alltoall(
        topo: &Topology,
        group: &[usize],
        tp: usize,
        bytes_per_rank: f64,
    ) -> (CollectiveCost, CollectiveCost, CollectiveCost) {
        let n = group.len();
        assert!(tp >= 1 && n.is_multiple_of(tp), "tp must divide group size");
        // Ranks with the same TP slot: stride-tp subsample of the group.
        let sub: Vec<usize> = group.iter().copied().step_by(tp).collect();
        let a2a = Self::alltoall(topo, &sub, bytes_per_rank);
        // All-gather of the received shard across the TP group (consecutive
        // ranks, typically intra-node).
        let tp_group: Vec<usize> = group.iter().copied().take(tp).collect();
        let ag = if tp > 1 {
            Self::allgather(topo, &tp_group, bytes_per_rank / tp as f64)
        } else {
            CollectiveCost::ZERO
        };
        (
            CollectiveCost {
                time: a2a.time + ag.time,
                bytes_on_wire: a2a.bytes_on_wire + ag.bytes_on_wire,
            },
            a2a,
            ag,
        )
    }

    /// Hierarchical (two-level) all-reduce: ring reduce-scatter inside each
    /// node, ring all-reduce of the shards across nodes (one flow per local
    /// slot, sharing the injection bandwidth), then ring all-gather inside
    /// each node. This is how NCCL survives cross-node tensor parallelism:
    /// only `1/gpus_per_node` of the tensor crosses the network per slot.
    pub fn allreduce_hierarchical(topo: &Topology, group: &[usize], bytes: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let (per_node, spanned) = topo.group_node_span(group);
        if spanned <= 1 {
            return Self::allreduce(topo, group, bytes);
        }
        let local = per_node.iter().copied().filter(|&c| c > 0).max().unwrap();
        // Intra-node reduce-scatter and all-gather over `local` ranks.
        let intra_group: Vec<usize> = group.iter().copied().take(local).collect();
        let rs = Self::reduce_scatter(topo, &intra_group, bytes);
        let ag = Self::allgather(topo, &intra_group, bytes / local as f64);
        // Inter-node all-reduce of one shard per local slot; `local`
        // concurrent flows share each node's injection bandwidth.
        let inter_bw = topo.cluster.inter_bw / local as f64;
        let shard = bytes / local as f64;
        let steps = 2 * (spanned - 1);
        let inter_time =
            steps as f64 * (topo.cluster.inter_latency + shard / (spanned as f64) / inter_bw);
        CollectiveCost {
            time: rs.time + inter_time + ag.time,
            bytes_on_wire: rs.bytes_on_wire
                + steps as f64 * shard / spanned as f64
                + ag.bytes_on_wire,
        }
    }

    /// Tree broadcast of `bytes` from the first rank of `group`.
    pub fn broadcast(topo: &Topology, group: &[usize], bytes: f64) -> CollectiveCost {
        let n = group.len();
        if n <= 1 {
            return CollectiveCost::ZERO;
        }
        let link = topo.ring_bottleneck(group);
        let rounds = (n as f64).log2().ceil();
        CollectiveCost {
            time: rounds * (link.latency + bytes / link.bw),
            bytes_on_wire: rounds * bytes,
        }
    }

    /// Point-to-point send of `bytes` (pipeline stage boundary, Sec. IV-B).
    pub fn p2p(topo: &Topology, from: usize, to: usize, bytes: f64) -> CollectiveCost {
        let link = topo.p2p_link(from, to);
        CollectiveCost {
            time: link.transfer_time(bytes),
            bytes_on_wire: bytes,
        }
    }

    /// Effective link between `a` and `b` when the whole `group` communicates
    /// simultaneously: cross-node flows share the node's injection bandwidth
    /// with the other group members on the same node.
    fn effective_p2p(topo: &Topology, group: &[usize], a: usize, b: usize) -> LinkSpec {
        let base = topo.p2p_link(a, b);
        if topo.same_node(a, b) {
            base
        } else {
            let (per_node, _) = topo.group_node_span(group);
            let sharers = per_node[topo.placement(a).node].max(1);
            LinkSpec::new(base.bw / sharers as f64, base.latency)
        }
    }
}

/// In-place all-reduce (sum) over caller-owned rank buffers: every slice
/// ends with the element-wise sum, accumulated in rank order starting from
/// `0.0` — bit-identical to [`CommGroup::allreduce_sum`] and to the
/// executed [`ShmRank::allreduce_sum`](crate::shmem::ShmRank::allreduce_sum),
/// but with zero heap allocation and no buffer moves. This is the
/// churn-free core the reference tensor-parallel path reduces through.
pub fn allreduce_sum_slices(bufs: &mut [&mut [f32]]) {
    let n = bufs.len();
    if n <= 1 {
        return;
    }
    let len = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == len),
        "allreduce requires equal buffer lengths"
    );
    for i in 0..len {
        let mut s = 0.0f32;
        for b in bufs.iter() {
            s += b[i];
        }
        for b in bufs.iter_mut() {
            b[i] = s;
        }
    }
}

/// Functional collectives over per-rank `f32` buffers. Used to *verify* that
/// communication-schedule rewrites (PCC) preserve results.
///
/// ```
/// use dsi_sim::collectives::CommGroup;
/// let mut g = CommGroup::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// g.allreduce_sum();
/// assert_eq!(g.buffers[0], vec![4.0, 6.0]);
/// assert_eq!(g.buffers[1], vec![4.0, 6.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CommGroup {
    /// `buffers[r]` is rank `r`'s local data.
    pub buffers: Vec<Vec<f32>>,
}

impl CommGroup {
    pub fn new(buffers: Vec<Vec<f32>>) -> Self {
        CommGroup { buffers }
    }

    pub fn world(&self) -> usize {
        self.buffers.len()
    }

    /// Element-wise sum across ranks; every rank ends with the sum.
    pub fn allreduce_sum(&mut self) {
        let n = self.world();
        if n <= 1 {
            return;
        }
        let len = self.buffers[0].len();
        assert!(
            self.buffers.iter().all(|b| b.len() == len),
            "allreduce requires equal buffer lengths"
        );
        let mut acc = vec![0.0f32; len];
        for b in &self.buffers {
            for (a, x) in acc.iter_mut().zip(b) {
                *a += x;
            }
        }
        for b in &mut self.buffers {
            b.copy_from_slice(&acc);
        }
    }

    /// Every rank ends with the concatenation of all ranks' buffers in rank
    /// order.
    pub fn allgather(&mut self) {
        let n = self.world();
        let mut cat = Vec::new();
        for b in &self.buffers {
            cat.extend_from_slice(b);
        }
        for r in 0..n {
            self.buffers[r] = cat.clone();
        }
    }

    /// All-to-all: rank `r`'s buffer is split into `n` equal chunks; chunk
    /// `j` goes to rank `j`, which concatenates received chunks in source
    /// order. Buffer lengths must be divisible by the world size.
    pub fn alltoall(&mut self) {
        let n = self.world();
        if n <= 1 {
            return;
        }
        let lens: Vec<usize> = self.buffers.iter().map(|b| b.len()).collect();
        assert!(
            lens.iter().all(|&l| l % n == 0),
            "alltoall requires buffer length divisible by world size"
        );
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); n];
        for (dst, o) in out.iter_mut().enumerate() {
            for (src, buf) in self.buffers.iter().enumerate() {
                let chunk = lens[src] / n;
                o.extend_from_slice(&buf[dst * chunk..(dst + 1) * chunk]);
            }
        }
        self.buffers = out;
    }

    /// Rank 0's buffer replaces everyone's.
    pub fn broadcast(&mut self) {
        let src = self.buffers[0].clone();
        for b in &mut self.buffers[1..] {
            *b = src.clone();
        }
    }

    /// Two-level all-reduce executed functionally: reduce-scatter within
    /// each node-group of `local` ranks, all-reduce across groups, all-gather
    /// within groups. Must (and does, see tests) equal [`Self::allreduce_sum`].
    pub fn allreduce_sum_hierarchical(&mut self, local: usize) {
        let n = self.world();
        if n <= 1 {
            return;
        }
        assert!(local >= 1 && n.is_multiple_of(local), "local must divide world size");
        let groups = n / local;
        if groups == 1 || local == 1 {
            self.allreduce_sum();
            return;
        }
        let len = self.buffers[0].len();
        assert!(len.is_multiple_of(local), "buffer must split across local ranks");
        // Stage 1: reduce-scatter within each group.
        let mut shards: Vec<Vec<Vec<f32>>> = Vec::with_capacity(groups);
        for g in 0..groups {
            let bufs: Vec<Vec<f32>> =
                (0..local).map(|r| self.buffers[g * local + r].clone()).collect();
            let mut cg = CommGroup::new(bufs);
            cg.reduce_scatter_sum();
            shards.push(cg.buffers);
        }
        // Stage 2: all-reduce each slot's shard across groups.
        #[allow(clippy::needless_range_loop)] // slot/g index the 2-D shard grid
        for slot in 0..local {
            let bufs: Vec<Vec<f32>> = (0..groups).map(|g| shards[g][slot].clone()).collect();
            let mut cg = CommGroup::new(bufs);
            cg.allreduce_sum();
            for (g, b) in cg.buffers.into_iter().enumerate() {
                shards[g][slot] = b;
            }
        }
        // Stage 3: all-gather within each group.
        #[allow(clippy::needless_range_loop)]
        for g in 0..groups {
            let mut cg = CommGroup::new(shards[g].clone());
            cg.allgather();
            for r in 0..local {
                self.buffers[g * local + r] = cg.buffers[r].clone();
            }
        }
    }

    /// Reduce-scatter (sum): buffer split into `n` chunks, rank `r` keeps the
    /// summed chunk `r`.
    pub fn reduce_scatter_sum(&mut self) {
        let n = self.world();
        if n <= 1 {
            return;
        }
        let len = self.buffers[0].len();
        assert!(len.is_multiple_of(n) && self.buffers.iter().all(|b| b.len() == len));
        let chunk = len / n;
        let mut out: Vec<Vec<f32>> = Vec::with_capacity(n);
        for r in 0..n {
            let mut acc = vec![0.0f32; chunk];
            for b in &self.buffers {
                for (a, x) in acc.iter_mut().zip(&b[r * chunk..(r + 1) * chunk]) {
                    *a += x;
                }
            }
            out.push(acc);
        }
        self.buffers = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::ClusterSpec;

    fn topo(nodes: usize) -> Topology {
        Topology::new(ClusterSpec::dgx_a100(nodes))
    }

    #[test]
    fn allreduce_cost_zero_for_singleton() {
        let t = topo(1);
        let c = Collectives::allreduce(&t, &[0], 1e6);
        assert_eq!(c.time, 0.0);
    }

    #[test]
    fn allreduce_cross_node_slower_than_intra() {
        let t = topo(2);
        let intra = Collectives::allreduce(&t, &(0..8).collect::<Vec<_>>(), 1e8);
        let inter = Collectives::allreduce(&t, &(0..16).collect::<Vec<_>>(), 1e8);
        assert!(inter.time > intra.time);
    }

    #[test]
    fn alltoall_latency_grows_linearly() {
        // Fixed small per-rank payload: latency term dominates and total time
        // grows ~linearly with group size (the Sec. V-B premise).
        let t = topo(32);
        let small = 64.0 * 1024.0;
        let t32 = Collectives::alltoall(&t, &(0..32).collect::<Vec<_>>(), small).time;
        let t128 = Collectives::alltoall(&t, &(0..128).collect::<Vec<_>>(), small).time;
        let t256 = Collectives::alltoall(&t, &(0..256).collect::<Vec<_>>(), small).time;
        assert!(t128 > 3.0 * t32 && t128 < 5.0 * t32, "t128/t32={}", t128 / t32);
        assert!(t256 > 1.7 * t128, "t256/t128={}", t256 / t128);
    }

    #[test]
    fn pcc_beats_flat_alltoall_at_scale() {
        // 128 GPUs with 8-way tensor slicing: paper says latency overhead
        // drops from (128 C1 + C2) to (16 C1 + C2).
        let t = topo(16);
        let group: Vec<usize> = (0..128).collect();
        let bytes = 1e6;
        let flat = Collectives::alltoall(&t, &group, bytes);
        let (pcc, a2a, ag) = Collectives::pcc_alltoall(&t, &group, 8, bytes);
        assert!(pcc.time < flat.time, "pcc {} flat {}", pcc.time, flat.time);
        assert!(a2a.time + ag.time == pcc.time);
    }

    #[test]
    fn pcc_with_tp1_equals_flat() {
        let t = topo(4);
        let group: Vec<usize> = (0..32).collect();
        let flat = Collectives::alltoall(&t, &group, 1e6);
        let (pcc, _, _) = Collectives::pcc_alltoall(&t, &group, 1, 1e6);
        assert!((pcc.time - flat.time).abs() < 1e-12);
    }

    #[test]
    fn hierarchical_allreduce_beats_flat_ring_cross_node() {
        // Cross-node TP (the Fig. 13 MP-only pathology): the two-level
        // schedule moves 1/8 of the tensor per slot over the network and
        // wins decisively.
        let t = topo(4);
        let group: Vec<usize> = (0..32).collect();
        let bytes = 3e8;
        let flat = Collectives::allreduce(&t, &group, bytes);
        let hier = Collectives::allreduce_hierarchical(&t, &group, bytes);
        assert!(
            hier.time < flat.time / 2.0,
            "hier {} flat {}",
            hier.time,
            flat.time
        );
        // Within one node the two collapse to the same ring.
        let intra: Vec<usize> = (0..8).collect();
        let a = Collectives::allreduce(&t, &intra, bytes);
        let b = Collectives::allreduce_hierarchical(&t, &intra, bytes);
        assert!((a.time - b.time).abs() < 1e-12);
    }

    #[test]
    fn functional_hierarchical_allreduce_equals_flat() {
        for (world, local) in [(4usize, 2usize), (8, 4), (6, 3), (8, 1)] {
            let len = 12; // divisible by every `local` above
            let bufs: Vec<Vec<f32>> = (0..world)
                .map(|r| (0..len).map(|i| (r * len + i) as f32).collect())
                .collect();
            let mut flat = CommGroup::new(bufs.clone());
            flat.allreduce_sum();
            let mut hier = CommGroup::new(bufs);
            hier.allreduce_sum_hierarchical(local);
            assert_eq!(flat.buffers, hier.buffers, "world {world} local {local}");
        }
    }

    #[test]
    fn allreduce_sum_slices_matches_comm_group() {
        for world in [1usize, 2, 3, 5] {
            let mut bufs: Vec<Vec<f32>> = (0..world)
                .map(|r| (0..9).map(|i| ((r * 9 + i) as f32).sin()).collect())
                .collect();
            let mut oracle = CommGroup::new(bufs.clone());
            oracle.allreduce_sum();
            let mut views: Vec<&mut [f32]> =
                bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            allreduce_sum_slices(&mut views);
            for (got, want) in bufs.iter().zip(&oracle.buffers) {
                assert_eq!(got, want, "world {world}");
            }
        }
    }

    #[test]
    fn functional_allreduce() {
        let mut g = CommGroup::new(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        g.allreduce_sum();
        for b in &g.buffers {
            assert_eq!(b, &vec![9.0, 12.0]);
        }
    }

    #[test]
    fn functional_allgather() {
        let mut g = CommGroup::new(vec![vec![1.0], vec![2.0]]);
        g.allgather();
        assert_eq!(g.buffers[0], vec![1.0, 2.0]);
        assert_eq!(g.buffers[1], vec![1.0, 2.0]);
    }

    #[test]
    fn functional_alltoall_is_transpose() {
        // 2 ranks, 4 elements each: chunk j of rank i lands at rank j.
        let mut g = CommGroup::new(vec![vec![0.0, 1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0, 7.0]]);
        g.alltoall();
        assert_eq!(g.buffers[0], vec![0.0, 1.0, 4.0, 5.0]);
        assert_eq!(g.buffers[1], vec![2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn functional_alltoall_involution_for_equal_chunks() {
        // alltoall twice with equal-size buffers restores the original.
        let orig = vec![vec![0.0, 1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0, 7.0]];
        let mut g = CommGroup::new(orig.clone());
        g.alltoall();
        g.alltoall();
        assert_eq!(g.buffers, orig);
    }

    #[test]
    fn functional_reduce_scatter() {
        let mut g = CommGroup::new(vec![vec![1.0, 2.0], vec![10.0, 20.0]]);
        g.reduce_scatter_sum();
        assert_eq!(g.buffers[0], vec![11.0]);
        assert_eq!(g.buffers[1], vec![22.0]);
    }

    #[test]
    fn broadcast_replicates_rank0() {
        let mut g = CommGroup::new(vec![vec![7.0], vec![0.0], vec![1.0]]);
        g.broadcast();
        assert!(g.buffers.iter().all(|b| b == &vec![7.0]));
    }
}
