//! Discrete-event task-graph executor.
//!
//! Pipeline schedules (Fig. 2/3), activation offload overlap (Sec. IV-C2/3),
//! and ZeRO-Inference prefetching (Sec. VI-B) are all instances of the same
//! question: given tasks with durations, dependencies, and exclusive
//! resources (a GPU's compute stream, its H2D/D2H copy engines, a node's
//! NVMe, the NIC), what is the makespan and where are the bubbles?
//!
//! The executor here is a deterministic greedy list scheduler: tasks become
//! ready when all dependencies finish and are started FIFO-by-readiness on
//! their resource. It reports per-task start/end times, per-resource busy
//! intervals, and verifies the two structural invariants (dependencies
//! respected, no resource double-booked) that the property tests lean on.

use serde::Serialize;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// Identifies an exclusive execution resource in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Resource {
    /// GPU `rank`'s compute stream.
    Compute(usize),
    /// GPU `rank`'s host-to-device copy engine.
    CopyH2D(usize),
    /// GPU `rank`'s device-to-host copy engine.
    CopyD2H(usize),
    /// GPU `rank`'s communication stream (NCCL).
    Network(usize),
    /// Node `node`'s NVMe drive set.
    Nvme(usize),
    /// Node `node`'s host CPU.
    Host(usize),
}

pub type TaskId = usize;

/// One schedulable unit of work.
#[derive(Debug, Clone, Serialize)]
pub struct Task {
    pub label: String,
    pub resource: Resource,
    /// Execution time in seconds once started.
    pub duration: f64,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
}

/// A DAG of tasks over exclusive resources.
///
/// ```
/// use dsi_sim::engine::{Resource, TaskGraph};
///
/// // Prefetch pattern: fetch layer 1 hides under layer 0's compute.
/// let mut g = TaskGraph::new();
/// let f0 = g.add("fetch0", Resource::CopyH2D(0), 1.0, &[]);
/// let c0 = g.add("compute0", Resource::Compute(0), 2.0, &[f0]);
/// let f1 = g.add("fetch1", Resource::CopyH2D(0), 1.0, &[f0]);
/// let _c1 = g.add("compute1", Resource::Compute(0), 2.0, &[f1, c0]);
/// let s = g.simulate();
/// assert_eq!(s.makespan, 5.0); // 1 + 2 + 2: the second fetch is free
/// assert!(s.validate(&g).is_ok());
/// ```
#[derive(Debug, Default, Clone)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; dependencies must refer to already-added tasks (so the
    /// graph is acyclic by construction).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        resource: Resource,
        duration: f64,
        deps: &[TaskId],
    ) -> TaskId {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} not yet defined for task {id}");
        }
        assert!(duration >= 0.0, "negative duration");
        self.tasks.push(Task {
            label: label.into(),
            resource,
            duration,
            deps: deps.to_vec(),
        });
        id
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Run the greedy list scheduler and return the realized schedule.
    pub fn simulate(&self) -> Schedule {
        #[derive(PartialEq)]
        struct Ready {
            time: f64,
            id: TaskId,
        }
        impl Eq for Ready {}
        impl Ord for Ready {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on (time, id): earliest-ready first, insertion
                // order as the deterministic tie-break.
                other
                    .time
                    .partial_cmp(&self.time)
                    .unwrap_or(Ordering::Equal)
                    .then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Ready {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.tasks.len();
        let mut start = vec![0.0f64; n];
        let mut end = vec![0.0f64; n];
        let mut remaining_deps: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }

        let mut free_at: HashMap<Resource, f64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        for (id, _) in self.tasks.iter().enumerate() {
            if remaining_deps[id] == 0 {
                heap.push(Ready { time: 0.0, id });
            }
        }

        let mut scheduled = 0usize;
        while let Some(Ready { time, id }) = heap.pop() {
            let t = &self.tasks[id];
            let res_free = free_at.get(&t.resource).copied().unwrap_or(0.0);
            let s = time.max(res_free);
            start[id] = s;
            end[id] = s + t.duration;
            free_at.insert(t.resource, end[id]);
            scheduled += 1;
            for &dep in &dependents[id] {
                remaining_deps[dep] -= 1;
                if remaining_deps[dep] == 0 {
                    // Ready when its latest dependency ends.
                    let ready = self.tasks[dep]
                        .deps
                        .iter()
                        .map(|&d| end[d])
                        .fold(0.0f64, f64::max);
                    heap.push(Ready { time: ready, id: dep });
                }
            }
        }
        assert_eq!(scheduled, n, "task graph contains a cycle");

        let makespan = end.iter().copied().fold(0.0f64, f64::max);
        Schedule { start, end, makespan }
    }
}

/// The realized timing of a simulated [`TaskGraph`].
#[derive(Debug, Clone, Serialize)]
pub struct Schedule {
    pub start: Vec<f64>,
    pub end: Vec<f64>,
    pub makespan: f64,
}

impl Schedule {
    /// Total busy time of one resource.
    pub fn busy_time(&self, graph: &TaskGraph, resource: Resource) -> f64 {
        graph
            .tasks()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.resource == resource)
            .map(|(i, _)| self.end[i] - self.start[i])
            .sum()
    }

    /// Fraction of the makespan a resource was busy.
    pub fn utilization(&self, graph: &TaskGraph, resource: Resource) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.busy_time(graph, resource) / self.makespan
        }
    }

    /// Idle ("bubble") time on a resource between its first and last task.
    pub fn bubble_time(&self, graph: &TaskGraph, resource: Resource) -> f64 {
        let mut ivs: Vec<(f64, f64)> = graph
            .tasks()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.resource == resource)
            .map(|(i, _)| (self.start[i], self.end[i]))
            .collect();
        if ivs.is_empty() {
            return 0.0;
        }
        ivs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let span = ivs.last().unwrap().1 - ivs[0].0;
        let busy: f64 = ivs.iter().map(|(s, e)| e - s).sum();
        span - busy
    }

    /// Check structural invariants: every dependency finishes before its
    /// dependent starts, and no resource runs two tasks at once.
    pub fn validate(&self, graph: &TaskGraph) -> Result<(), String> {
        const EPS: f64 = 1e-9;
        for (id, t) in graph.tasks().iter().enumerate() {
            for &d in &t.deps {
                if self.end[d] > self.start[id] + EPS {
                    return Err(format!(
                        "task {id} ({}) starts at {} before dep {d} ends at {}",
                        t.label, self.start[id], self.end[d]
                    ));
                }
            }
        }
        let mut by_res: HashMap<Resource, Vec<(f64, f64, usize)>> = HashMap::new();
        for (id, t) in graph.tasks().iter().enumerate() {
            by_res
                .entry(t.resource)
                .or_default()
                .push((self.start[id], self.end[id], id));
        }
        for (res, mut ivs) in by_res {
            ivs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in ivs.windows(2) {
                if w[0].1 > w[1].0 + EPS {
                    return Err(format!(
                        "resource {res:?}: tasks {} and {} overlap",
                        w[0].2, w[1].2
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let s = g.simulate();
        assert_eq!(s.makespan, 0.0);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn chain_is_sequential() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Compute(0), 1.0, &[]);
        let b = g.add("b", Resource::Compute(1), 2.0, &[a]);
        let _c = g.add("c", Resource::Compute(2), 3.0, &[b]);
        let s = g.simulate();
        assert_eq!(s.makespan, 6.0);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut g = TaskGraph::new();
        g.add("a", Resource::Compute(0), 5.0, &[]);
        g.add("b", Resource::Compute(1), 5.0, &[]);
        let s = g.simulate();
        assert_eq!(s.makespan, 5.0);
    }

    #[test]
    fn same_resource_serializes() {
        let mut g = TaskGraph::new();
        g.add("a", Resource::Compute(0), 5.0, &[]);
        g.add("b", Resource::Compute(0), 5.0, &[]);
        let s = g.simulate();
        assert_eq!(s.makespan, 10.0);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn copy_overlaps_compute() {
        // Prefetch pattern: fetch layer i+1 while computing layer i.
        let mut g = TaskGraph::new();
        let f0 = g.add("fetch0", Resource::CopyH2D(0), 1.0, &[]);
        let c0 = g.add("comp0", Resource::Compute(0), 2.0, &[f0]);
        let f1 = g.add("fetch1", Resource::CopyH2D(0), 1.0, &[f0]);
        let _c1 = g.add("comp1", Resource::Compute(0), 2.0, &[f1, c0]);
        let s = g.simulate();
        // fetch1 hides entirely under comp0: 1 + 2 + 2 = 5.
        assert_eq!(s.makespan, 5.0);
    }

    #[test]
    fn fifo_by_readiness() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Compute(1), 3.0, &[]);
        // b ready at 0, c ready at 3; same resource: b first.
        let b = g.add("b", Resource::Compute(0), 1.0, &[]);
        let c = g.add("c", Resource::Compute(0), 1.0, &[a]);
        let s = g.simulate();
        assert_eq!(s.start[b], 0.0);
        assert_eq!(s.start[c], 3.0);
    }

    #[test]
    fn utilization_and_bubbles() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Compute(0), 1.0, &[]);
        let gap = g.add("gap", Resource::Compute(1), 3.0, &[a]);
        g.add("b", Resource::Compute(0), 1.0, &[gap]);
        let s = g.simulate();
        assert_eq!(s.makespan, 5.0);
        assert!((s.busy_time(&g, Resource::Compute(0)) - 2.0).abs() < 1e-12);
        assert!((s.bubble_time(&g, Resource::Compute(0)) - 3.0).abs() < 1e-12);
        assert!((s.utilization(&g, Resource::Compute(0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new();
        g.add("a", Resource::Compute(0), 1.0, &[3]);
    }
}
