//! Deterministic fault injection and typed collective failures.
//!
//! The paper's scale claim — dense inference on up to 256 GPUs — puts every
//! collective on the critical path of *fault* behaviour as much as of
//! latency: at that rank count, stalled peers, crashed workers, and
//! corrupted transfers are routine, and a collective backend that spins
//! forever on a dead rendezvous turns one lost rank into a hung cluster.
//! This module supplies the two halves the executed engines need:
//!
//! * [`CollectiveError`] — the typed failure every hardened collective
//!   returns instead of hanging or panicking: which rank failed, what class
//!   of failure, and at which collective epoch (the per-rank count of
//!   barrier crossings, which doubles as the heartbeat the detector reads).
//! * [`FaultPlan`] / [`FaultInjector`] — a deterministic, seed-driven fault
//!   script. A plan is a list of [`FaultSpec`]s (rank × site × kind); the
//!   injector compiled from it fires each spec **once** (so a recovered
//!   group does not re-hit the same fault on replay) and costs a single
//!   `Option` check per hook when no plan is installed — the fault path is
//!   zero-work when injection is disabled, which the `bench_fault` harness
//!   measures.
//!
//! Faults model the four failure classes of the issue: rank stall/slowdown
//! (transient — the rank arrives late), dropped barrier arrival (the rank
//! silently never arrives, as a crashed process would), worker panic at a
//! chosen layer/token, and a corrupted reduce-scatter chunk (caught by the
//! optional per-chunk checksum in `shmem`).

use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Classes of collective failure a hardened collective can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CollectiveErrorKind {
    /// The rendezvous did not complete within the timeout. `stalled` lists
    /// the peers whose arrival heartbeat lags the reporter's epoch — the
    /// detector's best guess at who is dead or wedged.
    Timeout { stalled: Vec<usize> },
    /// A peer died (panicked or timed out) and poisoned the group.
    Poisoned,
    /// The per-chunk checksum caught a corrupted reduce-scatter chunk owned
    /// by `owner`.
    Corrupt { owner: usize },
    /// The rank was scripted to drop its barrier arrival (a simulated crash
    /// observed from the inside; peers observe a `Timeout`).
    InjectedExit,
}

/// Typed failure of one collective call: the reporting rank, the failure
/// class, and the rank's collective epoch (number of barrier crossings
/// attempted, i.e. its heartbeat value) at the point of failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CollectiveError {
    pub rank: usize,
    pub kind: CollectiveErrorKind,
    pub epoch: u64,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            CollectiveErrorKind::Timeout { stalled } => write!(
                f,
                "rank {} timed out at epoch {} (stalled peers: {:?})",
                self.rank, self.epoch, stalled
            ),
            CollectiveErrorKind::Poisoned => {
                write!(f, "rank {} found the group poisoned at epoch {}", self.rank, self.epoch)
            }
            CollectiveErrorKind::Corrupt { owner } => write!(
                f,
                "rank {} detected a corrupted chunk from rank {} at epoch {}",
                self.rank, owner, self.epoch
            ),
            CollectiveErrorKind::InjectedExit => {
                write!(f, "rank {} dropped its barrier arrival at epoch {}", self.rank, self.epoch)
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

/// What a scripted fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// Sleep `millis` before proceeding (a transient stall; with `millis`
    /// beyond the group timeout this becomes a detected hang).
    Stall { millis: u64 },
    /// Never arrive: the faulted rank returns [`CollectiveErrorKind::InjectedExit`]
    /// and its peers detect the loss via timeout — the "crashed process"
    /// model.
    Exit,
    /// Panic at the injection point (the "kernel assert" model; the worker's
    /// panic guard poisons the group).
    Panic,
    /// Flip the bits of one element of the rank's owned reduce-scatter
    /// chunk after reducing it (only meaningful at a [`FaultSite::Reduce`]).
    Corrupt,
}

/// Where in the execution a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultSite {
    /// At the rank's `epoch`-th barrier crossing (0-based).
    Barrier { epoch: u64 },
    /// After the rank reduces its owned chunk inside the all-reduce whose
    /// first barrier crossing is the rank's `epoch`-th.
    Reduce { epoch: u64 },
    /// In the forward pass, entering `layer` while computing the token at
    /// sequence position `token` (the executed TP engine's hook).
    Layer { token: usize, layer: usize },
}

/// One scripted fault: `rank` hits `kind` at `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultSpec {
    pub rank: usize,
    pub site: FaultSite,
    pub kind: FaultKind,
}

/// A deterministic fault script. Construct explicitly ([`FaultPlan::new`])
/// or seed-driven ([`FaultPlan::random`]); compile with
/// [`FaultPlan::injector`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultPlan { specs }
    }

    /// A seed-driven plan of `n` faults over `world` ranks: kinds and sites
    /// are drawn from a splitmix64 stream, so the same seed always yields
    /// the same script (the chaos harness sweeps seeds, not RNG state).
    /// Epochs are drawn from `0..max_epoch`, layer sites from
    /// `layers`/`tokens`.
    pub fn random(seed: u64, n: usize, world: usize, max_epoch: u64, layers: usize, tokens: usize) -> Self {
        assert!(world > 0 && max_epoch > 0 && layers > 0 && tokens > 0);
        let mut s = seed;
        let mut next = move || -> u64 {
            // splitmix64: the reference mixer — deterministic, dependency-free.
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let specs = (0..n)
            .map(|_| {
                let rank = (next() % world as u64) as usize;
                let kind = match next() % 4 {
                    0 => FaultKind::Stall { millis: 1 + next() % 20 },
                    1 => FaultKind::Exit,
                    2 => FaultKind::Panic,
                    _ => FaultKind::Corrupt,
                };
                let site = match (kind, next() % 3) {
                    (FaultKind::Corrupt, _) => FaultSite::Reduce { epoch: next() % max_epoch },
                    (_, 0) => FaultSite::Barrier { epoch: next() % max_epoch },
                    (_, 1) => FaultSite::Reduce { epoch: next() % max_epoch },
                    _ => FaultSite::Layer {
                        token: (next() % tokens as u64) as usize,
                        layer: (next() % layers as u64) as usize,
                    },
                };
                FaultSpec { rank, site, kind }
            })
            .collect();
        FaultPlan { specs }
    }

    /// Compile the plan into a fire-once injector.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            specs: self.specs.iter().map(|&s| (s, AtomicBool::new(false))).collect(),
        }
    }
}

/// A compiled [`FaultPlan`]: each spec fires at most once across the
/// injector's lifetime, so a supervisor that rebuilds the group and replays
/// does not re-trip the same scripted fault. Shared behind an `Arc` by every
/// rank of (possibly successive) communicators.
#[derive(Debug)]
pub struct FaultInjector {
    specs: Vec<(FaultSpec, AtomicBool)>,
}

impl FaultInjector {
    /// The scripted fault for `rank`'s `epoch`-th barrier crossing, if any
    /// (consumes the spec).
    pub fn at_barrier(&self, rank: usize, epoch: u64) -> Option<FaultKind> {
        self.take(|s| {
            s.rank == rank && matches!(s.site, FaultSite::Barrier { epoch: e } if e == epoch)
        })
    }

    /// The scripted fault for the reduce step of the all-reduce whose first
    /// barrier was `rank`'s `epoch`-th crossing, if any.
    pub fn at_reduce(&self, rank: usize, epoch: u64) -> Option<FaultKind> {
        self.take(|s| {
            s.rank == rank && matches!(s.site, FaultSite::Reduce { epoch: e } if e == epoch)
        })
    }

    /// The scripted fault for `rank` entering `layer` while the step covers
    /// sequence positions `[pos_lo, pos_hi)`, if any.
    pub fn at_layer(&self, rank: usize, pos_lo: usize, pos_hi: usize, layer: usize) -> Option<FaultKind> {
        self.take(|s| {
            s.rank == rank
                && matches!(s.site, FaultSite::Layer { token, layer: l }
                    if l == layer && token >= pos_lo && token < pos_hi)
        })
    }

    /// Number of specs that have not fired yet.
    pub fn pending(&self) -> usize {
        self.specs.iter().filter(|(_, fired)| !fired.load(Ordering::Relaxed)).count()
    }

    fn take(&self, hit: impl Fn(&FaultSpec) -> bool) -> Option<FaultKind> {
        for (spec, fired) in &self.specs {
            if hit(spec) && !fired.swap(true, Ordering::Relaxed) {
                return Some(spec.kind);
            }
        }
        None
    }
}

/// Apply the delay of a [`FaultKind::Stall`]. Separated out so callers at
/// every site share one sleep implementation.
pub fn apply_stall(millis: u64) {
    std::thread::sleep(Duration::from_millis(millis));
}

// ---------------------------------------------------------------------------
// Engine-level faults: the paged/continuous path's injection surface.
// ---------------------------------------------------------------------------

/// What a scripted engine fault does when it fires at a batch-engine call.
/// These model the paged fast path's failure classes: a worker panic inside
/// a step, a step stalling past the scheduler's progress deadline, silent
/// page-content corruption (detected because the step's tokens are
/// discarded and the sequence replayed), and a transient page-allocator
/// storm that reports `PagesExhausted` even though pages are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EngineFaultKind {
    /// Panic at the call boundary, *before* the inner engine runs — the
    /// "kernel assert" model. The injection point guarantees the inner
    /// engine's state is untouched, so `catch_unwind` recovery is sound.
    Panic,
    /// Sleep `millis` before running the call (the call then succeeds
    /// late; a scheduler with a per-step progress deadline detects it).
    Stall { millis: u64 },
    /// Run the call, then report its output as corrupted: the inner engine
    /// advanced (its KV state is poisoned from the scheduler's view) and
    /// the emitted tokens must be discarded.
    Corrupt,
    /// Report `PagesExhausted` for this call and the next `calls - 1`
    /// calls without touching the engine — a transient allocator storm.
    /// `calls` counts the firing call itself, so `0` is clamped to a
    /// one-call storm.
    Exhaust { calls: u32 },
}

/// Where in the batch-engine call stream a fault fires. Calls are indexed
/// per kind from 0 in the order the wrapper sees them; replayed calls count
/// as new calls, so a recovery path can be re-faulted by a later spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EngineFaultSite {
    /// The wrapper's `call`-th prefill (0-based).
    Prefill { call: u64 },
    /// The wrapper's `call`-th decode step (0-based).
    Decode { call: u64 },
}

/// One scripted engine fault: `kind` fires at `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EngineFaultSpec {
    pub site: EngineFaultSite,
    pub kind: EngineFaultKind,
}

/// A deterministic engine-fault script, the paged-path analog of
/// [`FaultPlan`]. Compile with [`EngineFaultPlan::injector`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct EngineFaultPlan {
    pub specs: Vec<EngineFaultSpec>,
}

impl EngineFaultPlan {
    pub fn new(specs: Vec<EngineFaultSpec>) -> Self {
        EngineFaultPlan { specs }
    }

    /// A seed-driven plan of `n` faults over the first `max_call` calls of
    /// each kind, drawn from the same splitmix64 stream discipline as
    /// [`FaultPlan::random`]: one seed, one script. `stall_millis` bounds
    /// injected stalls (keep it above the scheduler's step deadline to make
    /// stalls detectable, below the test's patience to keep runs fast).
    pub fn random(seed: u64, n: usize, max_call: u64, stall_millis: u64) -> Self {
        assert!(max_call > 0 && stall_millis > 0);
        let mut s = seed;
        let mut next = move || -> u64 {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let specs = (0..n)
            .map(|_| {
                let kind = match next() % 4 {
                    0 => EngineFaultKind::Panic,
                    1 => EngineFaultKind::Stall { millis: stall_millis / 2 + next() % (stall_millis / 2 + 1) },
                    2 => EngineFaultKind::Corrupt,
                    _ => EngineFaultKind::Exhaust { calls: 1 + (next() % 3) as u32 },
                };
                let site = if next() % 3 == 0 {
                    EngineFaultSite::Prefill { call: next() % max_call }
                } else {
                    EngineFaultSite::Decode { call: next() % max_call }
                };
                EngineFaultSpec { site, kind }
            })
            .collect();
        EngineFaultPlan { specs }
    }

    /// Compile the plan into a fire-once injector.
    pub fn injector(&self) -> EngineFaultInjector {
        EngineFaultInjector {
            specs: self.specs.iter().map(|&s| (s, AtomicBool::new(false))).collect(),
        }
    }
}

/// A compiled [`EngineFaultPlan`]: each spec fires at most once, so replay
/// recovery does not re-trip the same scripted fault (unless a *different*
/// spec targets a later call index). Shared behind an `Arc` between the
/// serving config and the engine wrapper; a `None` injector costs nothing.
#[derive(Debug, Default)]
pub struct EngineFaultInjector {
    specs: Vec<(EngineFaultSpec, AtomicBool)>,
}

impl EngineFaultInjector {
    /// The scripted fault for the `call`-th prefill, if any (consumes it).
    pub fn at_prefill(&self, call: u64) -> Option<EngineFaultKind> {
        self.take(|s| matches!(s.site, EngineFaultSite::Prefill { call: c } if c == call))
    }

    /// The scripted fault for the `call`-th decode step, if any.
    pub fn at_decode(&self, call: u64) -> Option<EngineFaultKind> {
        self.take(|s| matches!(s.site, EngineFaultSite::Decode { call: c } if c == call))
    }

    /// Number of specs that have not fired yet.
    pub fn pending(&self) -> usize {
        self.specs.iter().filter(|(_, fired)| !fired.load(Ordering::Relaxed)).count()
    }

    fn take(&self, hit: impl Fn(&EngineFaultSpec) -> bool) -> Option<EngineFaultKind> {
        for (spec, fired) in &self.specs {
            if hit(spec) && !fired.swap(true, Ordering::Relaxed) {
                return Some(spec.kind);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// I/O-tier faults: the weight-offload path's injection surface.
// ---------------------------------------------------------------------------

/// What a scripted I/O fault does when it fires at a tier read or open.
/// These model the failure classes of a weight tier (NVMe/DRAM-backed
/// weight file): a read stalling on a saturated device, a read returning
/// fewer bytes than asked, silent bit-rot in a panel payload (caught by the
/// per-panel checksum), and the tier handle failing outright. Reusable by
/// any tier reader — the offload store is the first consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IoFaultKind {
    /// Sleep `millis` before the read completes (it then succeeds late; a
    /// prefetcher with a clock-measured fetch deadline detects it).
    SlowRead { millis: u64 },
    /// The read returns fewer bytes than requested. The reader must detect
    /// the short count and re-read (bounded) rather than consume garbage.
    ShortRead,
    /// The read completes full-length but a bit has flipped in the panel
    /// payload; only the checksum can tell. A bounded re-read recovers
    /// (the fault is one-shot) — persistent corruption fails typed.
    CorruptPanel,
    /// The open (or the tier handle behind a read) fails outright. At an
    /// [`IoFaultSite::Open`] this makes `open` return a typed error; at a
    /// [`IoFaultSite::Read`] it models the handle dying under the reader —
    /// a prefetch worker hitting it must die cleanly, not wedge.
    FailOpen,
}

/// Where in a tier's I/O call stream a fault fires. Calls are indexed per
/// site kind from 0 in the order the tier reader issues them; re-reads
/// count as new calls, so a retry path can be re-faulted by a later spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum IoFaultSite {
    /// The reader's `call`-th open (0-based).
    Open { call: u64 },
    /// The reader's `call`-th panel read (0-based).
    Read { call: u64 },
}

/// One scripted I/O fault: `kind` fires at `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct IoFaultSpec {
    pub site: IoFaultSite,
    pub kind: IoFaultKind,
}

/// A deterministic I/O-fault script, the tier-reader analog of
/// [`EngineFaultPlan`]. Compile with [`IoFaultPlan::injector`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct IoFaultPlan {
    pub specs: Vec<IoFaultSpec>,
}

impl IoFaultPlan {
    pub fn new(specs: Vec<IoFaultSpec>) -> Self {
        IoFaultPlan { specs }
    }

    /// A seed-driven plan of `n` faults over the first `max_call` reads,
    /// drawn from the same splitmix64 stream discipline as
    /// [`EngineFaultPlan::random`]: one seed, one script. `stall_millis`
    /// bounds injected read stalls. `FailOpen` is only drawn at read sites
    /// here (a storm that kills the open would end the run before it
    /// starts); script open-faults explicitly when testing the open path.
    pub fn random(seed: u64, n: usize, max_call: u64, stall_millis: u64) -> Self {
        assert!(max_call > 0 && stall_millis > 0);
        let mut s = seed;
        let mut next = move || -> u64 {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let specs = (0..n)
            .map(|_| {
                let kind = match next() % 4 {
                    0 => IoFaultKind::SlowRead {
                        millis: stall_millis / 2 + next() % (stall_millis / 2 + 1),
                    },
                    1 => IoFaultKind::ShortRead,
                    2 => IoFaultKind::CorruptPanel,
                    _ => IoFaultKind::FailOpen,
                };
                let site = IoFaultSite::Read { call: next() % max_call };
                IoFaultSpec { site, kind }
            })
            .collect();
        IoFaultPlan { specs }
    }

    /// Compile the plan into a fire-once injector.
    pub fn injector(&self) -> IoFaultInjector {
        IoFaultInjector {
            specs: self.specs.iter().map(|&s| (s, AtomicBool::new(false))).collect(),
        }
    }
}

/// A compiled [`IoFaultPlan`]: each spec fires at most once, so a bounded
/// re-read recovers from a one-shot corruption (and persistent corruption
/// needs a script that targets the retry's call index too). Shared behind
/// an `Arc` between the offload config and the tier reader; a `None`
/// injector costs nothing.
#[derive(Debug, Default)]
pub struct IoFaultInjector {
    specs: Vec<(IoFaultSpec, AtomicBool)>,
}

impl IoFaultInjector {
    /// The scripted fault for the `call`-th open, if any (consumes it).
    pub fn at_open(&self, call: u64) -> Option<IoFaultKind> {
        self.take(|s| matches!(s.site, IoFaultSite::Open { call: c } if c == call))
    }

    /// The scripted fault for the `call`-th panel read, if any.
    pub fn at_read(&self, call: u64) -> Option<IoFaultKind> {
        self.take(|s| matches!(s.site, IoFaultSite::Read { call: c } if c == call))
    }

    /// Number of specs that have not fired yet.
    pub fn pending(&self) -> usize {
        self.specs.iter().filter(|(_, fired)| !fired.load(Ordering::Relaxed)).count()
    }

    fn take(&self, hit: impl Fn(&IoFaultSpec) -> bool) -> Option<IoFaultKind> {
        for (spec, fired) in &self.specs {
            if hit(spec) && !fired.swap(true, Ordering::Relaxed) {
                return Some(spec.kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 8, 4, 16, 3, 10);
        let b = FaultPlan::random(42, 8, 4, 16, 3, 10);
        assert_eq!(a.specs, b.specs);
        let c = FaultPlan::random(43, 8, 4, 16, 3, 10);
        assert_ne!(a.specs, c.specs, "different seeds must give different scripts");
        for s in &a.specs {
            assert!(s.rank < 4);
            if let FaultSite::Layer { token, layer } = s.site {
                assert!(token < 10 && layer < 3);
            }
        }
    }

    #[test]
    fn injector_fires_each_spec_once() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 3 },
            kind: FaultKind::Exit,
        }]);
        let inj = plan.injector();
        assert_eq!(inj.at_barrier(0, 3), None, "wrong rank must not fire");
        assert_eq!(inj.at_barrier(1, 2), None, "wrong epoch must not fire");
        assert_eq!(inj.pending(), 1);
        assert_eq!(inj.at_barrier(1, 3), Some(FaultKind::Exit));
        assert_eq!(inj.at_barrier(1, 3), None, "specs are one-shot");
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn layer_site_matches_position_range() {
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 0,
            site: FaultSite::Layer { token: 5, layer: 1 },
            kind: FaultKind::Panic,
        }]);
        let inj = plan.injector();
        assert_eq!(inj.at_layer(0, 0, 4, 1), None, "position 5 not in [0,4)");
        assert_eq!(inj.at_layer(0, 4, 8, 0), None, "wrong layer");
        assert_eq!(inj.at_layer(0, 4, 8, 1), Some(FaultKind::Panic));
    }

    #[test]
    fn error_display_names_rank_kind_epoch() {
        let e = CollectiveError {
            rank: 2,
            kind: CollectiveErrorKind::Timeout { stalled: vec![1] },
            epoch: 7,
        };
        let s = e.to_string();
        assert!(s.contains("rank 2") && s.contains("epoch 7") && s.contains("[1]"), "{s}");
    }

    #[test]
    fn engine_plans_are_seed_deterministic() {
        let a = EngineFaultPlan::random(42, 8, 32, 80);
        let b = EngineFaultPlan::random(42, 8, 32, 80);
        assert_eq!(a.specs, b.specs);
        let c = EngineFaultPlan::random(43, 8, 32, 80);
        assert_ne!(a.specs, c.specs, "different seeds must give different scripts");
        for s in &a.specs {
            match s.site {
                EngineFaultSite::Prefill { call } | EngineFaultSite::Decode { call } => {
                    assert!(call < 32)
                }
            }
            if let EngineFaultKind::Stall { millis } = s.kind {
                assert!((40..=80).contains(&millis), "stall {millis} out of band");
            }
        }
    }

    #[test]
    fn io_plans_are_seed_deterministic() {
        let a = IoFaultPlan::random(42, 8, 64, 40);
        let b = IoFaultPlan::random(42, 8, 64, 40);
        assert_eq!(a.specs, b.specs);
        let c = IoFaultPlan::random(43, 8, 64, 40);
        assert_ne!(a.specs, c.specs, "different seeds must give different scripts");
        for s in &a.specs {
            match s.site {
                IoFaultSite::Read { call } => assert!(call < 64),
                IoFaultSite::Open { .. } => panic!("random plans target reads only"),
            }
            if let IoFaultKind::SlowRead { millis } = s.kind {
                assert!((20..=40).contains(&millis), "stall {millis} out of band");
            }
        }
    }

    #[test]
    fn io_injector_fires_each_spec_once() {
        let plan = IoFaultPlan::new(vec![
            IoFaultSpec { site: IoFaultSite::Read { call: 3 }, kind: IoFaultKind::CorruptPanel },
            IoFaultSpec { site: IoFaultSite::Open { call: 0 }, kind: IoFaultKind::FailOpen },
        ]);
        let inj = plan.injector();
        assert_eq!(inj.at_read(0), None, "wrong call index must not fire");
        assert_eq!(inj.at_read(0), None);
        assert_eq!(inj.pending(), 2);
        assert_eq!(inj.at_read(3), Some(IoFaultKind::CorruptPanel));
        assert_eq!(inj.at_read(3), None, "specs are one-shot");
        assert_eq!(inj.at_open(1), None, "open sites are indexed separately");
        assert_eq!(inj.at_open(0), Some(IoFaultKind::FailOpen));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn engine_injector_fires_each_spec_once() {
        let plan = EngineFaultPlan::new(vec![
            EngineFaultSpec {
                site: EngineFaultSite::Decode { call: 2 },
                kind: EngineFaultKind::Panic,
            },
            EngineFaultSpec {
                site: EngineFaultSite::Prefill { call: 0 },
                kind: EngineFaultKind::Exhaust { calls: 2 },
            },
        ]);
        let inj = plan.injector();
        assert_eq!(inj.at_decode(0), None, "wrong call index must not fire");
        assert_eq!(inj.at_prefill(2), None, "site kinds are distinct");
        assert_eq!(inj.pending(), 2);
        assert_eq!(inj.at_decode(2), Some(EngineFaultKind::Panic));
        assert_eq!(inj.at_decode(2), None, "specs are one-shot");
        assert_eq!(inj.at_prefill(0), Some(EngineFaultKind::Exhaust { calls: 2 }));
        assert_eq!(inj.pending(), 0);
    }
}
