//! Hardware descriptions: GPUs, nodes, clusters.
//!
//! Presets correspond to the three testbeds of Sec. VII-A4:
//! * `ClusterSpec::dgx_a100(nodes)` — 8×A100-40GB DGX boxes, NVSwitch
//!   intra-node, HDR InfiniBand inter-node (up to 32 boxes = 256 GPUs),
//! * `NodeSpec::lambda_a6000()` — 2×A6000-48GB workstation, 256 GB DRAM,
//!   2 TB NVMe,
//! * `NodeSpec::dgx2_v100()` — 16×V100-32GB DGX-2, 1.5 TB DRAM, 30 TB NVMe.
//!
//! All bandwidths are bytes/second, all latencies seconds, all capacities
//! bytes. Numbers are public vendor figures; where the paper quotes a peak
//! (e.g. 158.4 TFLOPS FP16 for the A6000 in Sec. VII-D2) we use the paper's
//! number so utilization percentages line up.

use serde::{Deserialize, Serialize};

/// Floating point / integer formats the kernels support (Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    Fp32,
    Fp16,
    Int8,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            DType::Fp32 => 4,
            DType::Fp16 => 2,
            DType::Int8 => 1,
        }
    }

    /// The `M` factor of SBI-GeMM's cache-line layout (Sec. III-C3): how many
    /// elements each thread reads along the input dimension so a 32-thread
    /// warp consumes a full 128-byte L1 cache line.
    pub const fn sbi_interleave(self) -> usize {
        match self {
            DType::Fp32 => 1,
            DType::Fp16 => 2,
            DType::Int8 => 4,
        }
    }
}

/// A single GPU device model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    pub name: String,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Peak dense FP32 throughput, FLOP/s.
    pub peak_fp32: f64,
    /// Peak FP16 tensor-core throughput, FLOP/s.
    pub peak_fp16: f64,
    /// Peak INT8 tensor-core throughput, OP/s.
    pub peak_int8: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CPU-side kernel launch overhead per kernel, seconds. This is the gap
    /// CUDA graphs eliminate (Sec. III-D).
    pub kernel_launch_overhead: f64,
    /// L1 cache line size in bytes (128 on all modeled parts, Sec. III-C3).
    pub cache_line_bytes: u32,
}

impl GpuSpec {
    /// Peak math throughput for a given data type.
    pub fn peak_flops(&self, dtype: DType) -> f64 {
        match dtype {
            DType::Fp32 => self.peak_fp32,
            DType::Fp16 => self.peak_fp16,
            DType::Int8 => self.peak_int8,
        }
    }

    /// NVIDIA A100-SXM4-40GB (DGX A100 cluster of Sec. VII-A4).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-40GB".into(),
            mem_bytes: 40 * (1 << 30),
            mem_bw: 1.555e12,
            peak_fp32: 19.5e12,
            peak_fp16: 312e12,
            peak_int8: 624e12,
            sm_count: 108,
            kernel_launch_overhead: 2.2e-6,
            cache_line_bytes: 128,
        }
    }

    /// NVIDIA RTX A6000 48GB (lambda workstation). The paper quotes a
    /// theoretical FP16 peak of 158.4 TFLOPS (Sec. VII-D2).
    pub fn a6000() -> Self {
        GpuSpec {
            name: "RTX-A6000-48GB".into(),
            mem_bytes: 48 * (1 << 30),
            mem_bw: 0.768e12,
            peak_fp32: 38.7e12,
            peak_fp16: 158.4e12,
            peak_int8: 316.8e12,
            sm_count: 84,
            kernel_launch_overhead: 2.2e-6,
            cache_line_bytes: 128,
        }
    }

    /// NVIDIA A100-SXM4-80GB — the capacity variant (not used by the
    /// paper's testbeds, provided for what-if studies).
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-80GB".into(),
            mem_bytes: 80 * (1 << 30),
            mem_bw: 2.039e12,
            ..GpuSpec::a100_40gb()
        }
    }

    /// NVIDIA H100-SXM5-80GB — a post-paper part for forward-looking
    /// what-if studies (the paper's techniques are architecture-agnostic;
    /// the rooflines just move).
    pub fn h100_sxm() -> Self {
        GpuSpec {
            name: "H100-SXM5-80GB".into(),
            mem_bytes: 80 * (1 << 30),
            mem_bw: 3.35e12,
            peak_fp32: 66.9e12,
            peak_fp16: 989.4e12,
            peak_int8: 1978.9e12,
            sm_count: 132,
            kernel_launch_overhead: 2.0e-6,
            cache_line_bytes: 128,
        }
    }

    /// NVIDIA V100-SXM3-32GB (DGX-2 server).
    pub fn v100_32gb() -> Self {
        GpuSpec {
            name: "V100-SXM3-32GB".into(),
            mem_bytes: 32 * (1 << 30),
            mem_bw: 0.9e12,
            peak_fp32: 15.7e12,
            peak_fp16: 125e12,
            // V100 has no INT8 tensor cores; DP4A gives ~4x FP32.
            peak_int8: 62.8e12,
            sm_count: 80,
            kernel_launch_overhead: 2.6e-6,
            cache_line_bytes: 128,
        }
    }
}

/// A point-to-point or bus link model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Unidirectional bandwidth per endpoint, bytes/s.
    pub bw: f64,
    /// Base message latency, seconds.
    pub latency: f64,
}

impl LinkSpec {
    pub const fn new(bw: f64, latency: f64) -> Self {
        LinkSpec { bw, latency }
    }

    /// Time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bw
    }

    /// NVSwitch fabric as seen by one A100 (600 GB/s bidirectional NVLink3,
    /// 300 GB/s each direction).
    pub fn nvswitch_a100() -> Self {
        LinkSpec::new(300e9, 3.0e-6)
    }

    /// NVSwitch fabric as seen by one V100 on a DGX-2 (NVLink2, 150 GB/s per
    /// direction).
    pub fn nvswitch_v100() -> Self {
        LinkSpec::new(150e9, 4.0e-6)
    }

    /// NVLink bridge between the two A6000s of the lambda workstation.
    pub fn nvlink_a6000() -> Self {
        LinkSpec::new(56e9, 4.0e-6)
    }

    /// PCIe 4.0 x16 (A100, A6000 hosts).
    pub fn pcie_gen4() -> Self {
        LinkSpec::new(25e9, 8.0e-6)
    }

    /// PCIe 3.0 x16 (V100 / DGX-2 host links).
    pub fn pcie_gen3() -> Self {
        LinkSpec::new(12.5e9, 8.0e-6)
    }

    /// One HDR InfiniBand rail, 200 Gb/s. The latency is the effective
    /// per-message cost seen by pipelined NCCL exchanges (RDMA small-message
    /// injection), not a first-byte ping-pong latency.
    pub fn ib_hdr() -> Self {
        LinkSpec::new(25e9, 4.0e-6)
    }
}

/// A single multi-GPU server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    pub gpus_per_node: usize,
    pub gpu: GpuSpec,
    /// GPU↔GPU link inside the node (NVLink/NVSwitch).
    pub intra_link: LinkSpec,
    /// GPU↔host link.
    pub pcie: LinkSpec,
    /// Whether two adjacent GPUs share one PCIe link to the host. This is the
    /// contention that the odd/even offload scheduling of Sec. IV-C3 works
    /// around: "Most system architectures do not have a unique PCIe bus for
    /// each GPU and share a single link across two GPUs."
    pub pcie_shared_pairs: bool,
    /// Host DRAM capacity in bytes.
    pub dram_bytes: u64,
    /// Host DRAM bandwidth (for CPU-side compute / staging), bytes/s.
    pub dram_bw: f64,
    /// NVMe capacity in bytes.
    pub nvme_bytes: u64,
    /// Aggregate NVMe sequential read bandwidth, bytes/s.
    pub nvme_read_bw: f64,
    /// Aggregate NVMe sequential write bandwidth, bytes/s.
    pub nvme_write_bw: f64,
    /// Effective CPU FP32 throughput for the CPU-only baseline, FLOP/s.
    pub cpu_flops: f64,
}

impl NodeSpec {
    /// One DGX A100 box: 8×A100-40GB on NVSwitch, PCIe gen4 shared in pairs.
    pub fn dgx_a100() -> Self {
        NodeSpec {
            gpus_per_node: 8,
            gpu: GpuSpec::a100_40gb(),
            intra_link: LinkSpec::nvswitch_a100(),
            pcie: LinkSpec::pcie_gen4(),
            pcie_shared_pairs: true,
            dram_bytes: 1024 * (1 << 30),
            dram_bw: 200e9,
            nvme_bytes: 15 * (1u64 << 40),
            nvme_read_bw: 25e9,
            nvme_write_bw: 12e9,
            cpu_flops: 3e12,
        }
    }

    /// Lambda "Vector" workstation: 2×A6000, 256 GB DRAM, 2 TB NVMe
    /// (Sec. VII-A4).
    pub fn lambda_a6000() -> Self {
        NodeSpec {
            gpus_per_node: 2,
            gpu: GpuSpec::a6000(),
            intra_link: LinkSpec::nvlink_a6000(),
            pcie: LinkSpec::pcie_gen4(),
            pcie_shared_pairs: false,
            dram_bytes: 256 * (1 << 30),
            dram_bw: 100e9,
            nvme_bytes: 2 * (1u64 << 40),
            nvme_read_bw: 6.4e9,
            nvme_write_bw: 3.0e9,
            cpu_flops: 2.5e12,
        }
    }

    /// DGX-2: 16×V100-32GB on NVSwitch, 1.5 TB DRAM, 30 TB NVMe
    /// (Sec. VII-A4).
    pub fn dgx2_v100() -> Self {
        NodeSpec {
            gpus_per_node: 16,
            gpu: GpuSpec::v100_32gb(),
            intra_link: LinkSpec::nvswitch_v100(),
            pcie: LinkSpec::pcie_gen3(),
            pcie_shared_pairs: true,
            dram_bytes: 1536 * (1 << 30),
            dram_bw: 180e9,
            nvme_bytes: 30 * (1u64 << 40),
            nvme_read_bw: 25e9,
            nvme_write_bw: 12e9,
            cpu_flops: 2.5e12,
        }
    }

    /// Effective per-GPU host-link bandwidth when `n_active` GPUs on this
    /// node are pulling from the host simultaneously. With shared pairs, two
    /// concurrently-active neighbors halve each other's bandwidth.
    pub fn pcie_bw_per_gpu(&self, n_active: usize) -> f64 {
        if self.pcie_shared_pairs && n_active > self.gpus_per_node / 2 {
            self.pcie.bw / 2.0
        } else {
            self.pcie.bw
        }
    }
}

/// A cluster of identical nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub nodes: usize,
    pub node: NodeSpec,
    /// Per-node inter-node network bandwidth (all rails aggregated), bytes/s.
    pub inter_bw: f64,
    /// Inter-node message latency, seconds.
    pub inter_latency: f64,
}

impl ClusterSpec {
    /// `nodes` DGX A100 boxes connected with 8 HDR rails each (the paper's
    /// 256-GPU cluster is 32 such boxes).
    pub fn dgx_a100(nodes: usize) -> Self {
        let rail = LinkSpec::ib_hdr();
        ClusterSpec {
            nodes,
            node: NodeSpec::dgx_a100(),
            inter_bw: 8.0 * rail.bw,
            inter_latency: rail.latency,
        }
    }

    /// `nodes` DGX H100 boxes (NVLink4 NVSwitch, 8 NDR rails) — for
    /// forward-looking what-if studies.
    pub fn dgx_h100(nodes: usize) -> Self {
        let node = NodeSpec {
            gpus_per_node: 8,
            gpu: GpuSpec::h100_sxm(),
            intra_link: LinkSpec::new(450e9, 2.5e-6),
            pcie: LinkSpec::new(50e9, 7.0e-6), // PCIe gen5 x16
            pcie_shared_pairs: true,
            dram_bytes: 2048 * (1 << 30),
            dram_bw: 350e9,
            nvme_bytes: 30 * (1u64 << 40),
            nvme_read_bw: 50e9,
            nvme_write_bw: 25e9,
            cpu_flops: 5e12,
        };
        ClusterSpec {
            nodes,
            node,
            inter_bw: 8.0 * 50e9, // 8× NDR 400 Gb/s
            inter_latency: 3.5e-6,
        }
    }

    /// Single-node cluster wrapper.
    pub fn single(node: NodeSpec) -> Self {
        ClusterSpec {
            nodes: 1,
            node,
            inter_bw: f64::INFINITY,
            inter_latency: 0.0,
        }
    }

    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus_per_node
    }

    /// Aggregate HBM bandwidth across every GPU in the cluster; the
    /// denominator of the paper's "33% of peak memory bandwidth" claim
    /// (Sec. VII-B2).
    pub fn aggregate_mem_bw(&self) -> f64 {
        self.total_gpus() as f64 * self.node.gpu.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::Fp32.bytes(), 4);
        assert_eq!(DType::Fp16.bytes(), 2);
        assert_eq!(DType::Int8.bytes(), 1);
    }

    #[test]
    fn sbi_interleave_fills_cache_line() {
        // 32 threads/warp * M elements * element size == 128-byte line.
        for dt in [DType::Fp16, DType::Int8] {
            assert_eq!(32 * dt.sbi_interleave() * dt.bytes(), 128);
        }
    }

    #[test]
    fn a100_peaks() {
        let g = GpuSpec::a100_40gb();
        assert_eq!(g.peak_flops(DType::Fp16), 312e12);
        assert_eq!(g.peak_flops(DType::Int8), 624e12);
        assert!(g.peak_flops(DType::Int8) > g.peak_flops(DType::Fp16));
    }

    #[test]
    fn cluster_256_gpus() {
        let c = ClusterSpec::dgx_a100(32);
        assert_eq!(c.total_gpus(), 256);
        // Paper: 256 A100s provide ~398 TB/s peak; 128 TB/s achieved = ~33%.
        let agg = c.aggregate_mem_bw();
        assert!((agg - 256.0 * 1.555e12).abs() < 1.0);
        assert!((128e12 / agg - 0.33).abs() < 0.02);
    }

    #[test]
    fn newer_parts_strictly_dominate() {
        let a40 = GpuSpec::a100_40gb();
        let a80 = GpuSpec::a100_80gb();
        let h100 = GpuSpec::h100_sxm();
        assert!(a80.mem_bytes > a40.mem_bytes && a80.mem_bw > a40.mem_bw);
        assert_eq!(a80.peak_fp16, a40.peak_fp16);
        assert!(h100.mem_bw > a80.mem_bw);
        assert!(h100.peak_flops(DType::Fp16) > 3.0 * a40.peak_flops(DType::Fp16));
    }

    #[test]
    fn dgx_h100_cluster_wiring() {
        let c = ClusterSpec::dgx_h100(2);
        assert_eq!(c.total_gpus(), 16);
        assert!(c.node.intra_link.bw > NodeSpec::dgx_a100().intra_link.bw);
        assert!(c.inter_bw > ClusterSpec::dgx_a100(2).inter_bw);
    }

    #[test]
    fn transfer_time_monotone_in_size() {
        let l = LinkSpec::pcie_gen4();
        assert!(l.transfer_time(1e9) < l.transfer_time(2e9));
        assert!(l.transfer_time(0.0) == l.latency);
    }

    #[test]
    fn shared_pcie_pairs_halve_bandwidth() {
        let n = NodeSpec::dgx_a100();
        assert_eq!(n.pcie_bw_per_gpu(8), n.pcie.bw / 2.0);
        assert_eq!(n.pcie_bw_per_gpu(4), n.pcie.bw);
        let lam = NodeSpec::lambda_a6000();
        assert_eq!(lam.pcie_bw_per_gpu(2), lam.pcie.bw);
    }

    #[test]
    fn lambda_fits_530b_on_nvme_only() {
        // MT-NLG 530B at FP16 needs ~1.06 TB: too big for 256 GB DRAM and
        // 48 GB GPU, fits on the 2 TB NVMe (Sec. VII-D1).
        let n = NodeSpec::lambda_a6000();
        let weights = 530e9 * 2.0;
        assert!(weights > n.dram_bytes as f64);
        assert!(weights > n.gpu.mem_bytes as f64);
        assert!(weights < n.nvme_bytes as f64);
    }
}
