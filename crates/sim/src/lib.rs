//! # dsi-sim — simulated GPU cluster substrate
//!
//! This crate provides the hardware substrate that the rest of the
//! DeepSpeed-Inference reproduction runs on. The paper's evaluation spans
//! clusters of up to 256 NVIDIA A100 GPUs; since no GPUs are available to a
//! pure-Rust reproduction, every latency/throughput argument in the paper is
//! re-derived on top of three components:
//!
//! * [`hw`] — parameterized device and cluster descriptions (A100 / A6000 /
//!   V100 presets matching the paper's testbeds, Sec. VII-A4),
//! * [`engine`] — a discrete-event task-graph executor with per-device
//!   compute/copy/network streams, used to play out pipeline schedules,
//!   offload overlap, and prefetching,
//! * [`collectives`] — α–β cost models for NCCL-style collectives routed over
//!   an explicit hierarchical topology, plus *functional* collectives that
//!   actually move data between rank-local buffers so that communication
//!   rewrites (e.g. the PCC all-to-all of Sec. V-B) can be verified for
//!   correctness, not just costed,
//! * [`shmem`] — *executed* collectives for threaded ranks on one host: a
//!   sense-reversing barrier and a chunked in-place all-reduce over
//!   published per-rank buffers, used by the executed tensor-parallel
//!   engine (`dsi-parallel::tp_exec`) as its NCCL stand-in. Every
//!   rendezvous is bounded (spin, then yield with a deadline) and fails
//!   typed instead of hanging,
//! * [`fault`] — deterministic, seed-driven fault injection
//!   ([`fault::FaultPlan`]) and the typed [`fault::CollectiveError`] the
//!   hardened collectives report: rank stalls, dropped arrivals, scripted
//!   panics, and corrupted reduce-scatter chunks, each fired at most once.
//!
//! The models here are rooflines: a kernel's execution time is
//! `max(flops / peak, bytes / bandwidth) + launch overhead`, and a message's
//! transfer time is `latency + size / bottleneck-bandwidth`. The paper's own
//! analysis (Sec. I, III, V-B) is phrased entirely in these terms, which is
//! what makes the reproduction faithful in *shape* even though absolute
//! numbers come from calibration constants rather than silicon.

pub mod clock;
pub mod collectives;
pub mod engine;
pub mod fault;
pub mod hw;
pub mod shmem;
pub mod topology;
pub mod trace;

pub use clock::{CancelToken, Clock, ManualClock};
pub use collectives::{allreduce_sum_slices, CollectiveCost, CommGroup};
pub use fault::{CollectiveError, CollectiveErrorKind, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultSpec};
pub use fault::{EngineFaultInjector, EngineFaultKind, EngineFaultPlan, EngineFaultSite, EngineFaultSpec};
pub use fault::{IoFaultInjector, IoFaultKind, IoFaultPlan, IoFaultSite, IoFaultSpec};
pub use shmem::{CommConfig, SenseBarrier, ShmComm, ShmPoisoner, ShmRank};
pub use engine::{Resource, Schedule, Task, TaskGraph, TaskId};
pub use hw::{ClusterSpec, GpuSpec, LinkSpec, NodeSpec};
pub use topology::Topology;
