//! Shared-memory collectives: the *executed* counterpart of
//! [`crate::collectives`].
//!
//! [`CommGroup`](crate::collectives::CommGroup) is a functional oracle: it
//! owns every rank's buffer, runs on one thread, and clones freely. That is
//! the right tool for verifying schedule rewrites, but it cannot demonstrate
//! a tensor-parallel *speedup* — the paper's per-layer all-reduces
//! (Sec. IV-A) only pay off because ranks run concurrently and synchronize
//! through a fast intra-node fabric. On a multi-core CPU host the fabric is
//! the cache-coherent memory system, so this module provides the NCCL-role
//! equivalent for threaded ranks:
//!
//! * [`SenseBarrier`] — a sense-reversing centralized barrier: one atomic
//!   counter plus one atomic sense flag, reusable every round with no
//!   per-round state reset (each participant keeps a thread-local sense bit
//!   that flips per crossing). Waiters spin briefly then yield, so the
//!   barrier stays correct (if slow) even when ranks share one core.
//! * [`ShmComm`] / [`ShmRank`] — a communicator over `world` threads where
//!   each rank *publishes* a pointer to its own buffer and the group runs a
//!   chunked all-reduce in place: rank `r` owns chunk `r`, sums that chunk
//!   across every rank's published buffer (reduce-scatter), then copies the
//!   other owners' reduced chunks back (all-gather). Three barrier
//!   crossings, zero heap allocation, no full-buffer clone — each element
//!   is read `world` times and written twice, independent of `world`.
//!
//! The reduction order is fixed (rank 0, 1, …, world−1 per element), so a
//! shared-memory all-reduce is bit-identical to
//! [`CommGroup::allreduce_sum`](crate::collectives::CommGroup::allreduce_sum)
//! on the same inputs — the tests hold the two against each other.
//!
//! The collective *program* this engine executes per buffer —
//! barrier / reduce-scatter / barrier / all-gather / barrier — is modelled
//! statically in `dsi-verify::collective::tp_exec_allreduce_programs`, so
//! the race detector can prove the per-layer schedule deadlock-free (and a
//! seeded missing-barrier control proves the detector still fires).

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// How many busy spins to burn before yielding the core. Small: on a
/// saturated or single-core host the barrier degrades to cooperative
/// scheduling instead of burning a quantum per crossing.
const SPINS_BEFORE_YIELD: u32 = 64;

/// Sense-reversing centralized barrier for a fixed party count.
///
/// Every participant holds its own sense bit (see [`ShmRank`]) and flips it
/// each crossing; the last arriver resets the counter and publishes the new
/// global sense, releasing the spinners. Unlike `std::sync::Barrier` there
/// is no generation bookkeeping or mutex — two atomics, both on one cache
/// line, reused forever.
///
/// A participant that panics would strand the others mid-spin, so the
/// barrier carries a poison flag: [`SenseBarrier::poison`] makes every
/// current and future waiter panic instead of spinning on a dead group.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
}

impl SenseBarrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Cross the barrier. `local_sense` is the caller's thread-local sense
    /// bit (start every participant at `false` and pass the same variable to
    /// every crossing).
    ///
    /// # Panics
    /// Panics if the barrier is [poisoned](Self::poison) — a peer died and
    /// the rendezvous can never complete.
    pub fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        // AcqRel: the arrival both publishes this thread's writes (release)
        // and, for the last arriver, observes every peer's writes (acquire)
        // before it releases them all via the sense store.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("shmem barrier poisoned: a peer rank panicked");
                }
                if spins < SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Mark the group dead: every rank currently or subsequently spinning in
    /// [`wait`](Self::wait) panics instead of hanging. Called from rank
    /// panic guards so one failing rank fails the whole group loudly.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// One rank's published buffer window: base pointer + length, written by the
/// owner before the publish barrier and read by peers between barriers.
#[derive(Debug)]
struct Slot {
    ptr: AtomicPtr<f32>,
    len: AtomicUsize,
}

/// Shared state of a thread group: one slot per rank plus the barrier.
/// Create with [`ShmComm::create`], which hands out one [`ShmRank`] per
/// rank; the `ShmComm` itself stays behind an `Arc` inside the handles.
#[derive(Debug)]
pub struct ShmComm {
    slots: Vec<Slot>,
    barrier: SenseBarrier,
}

impl ShmComm {
    /// Build a `world`-rank communicator and return the per-rank handles,
    /// in rank order. Each handle must move to (at most) one thread.
    pub fn create(world: usize) -> Vec<ShmRank> {
        assert!(world >= 1, "communicator needs at least one rank");
        let comm = Arc::new(ShmComm {
            slots: (0..world)
                .map(|_| Slot {
                    ptr: AtomicPtr::new(std::ptr::null_mut()),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            barrier: SenseBarrier::new(world),
        });
        (0..world)
            .map(|rank| ShmRank { comm: Arc::clone(&comm), rank, sense: false })
            .collect()
    }
}

/// A rank's handle on a [`ShmComm`]: carries the rank id and the
/// thread-local barrier sense. Not `Clone` — exactly one handle per rank,
/// so each collective call is one arrival per rank.
#[derive(Debug)]
pub struct ShmRank {
    comm: Arc<ShmComm>,
    rank: usize,
    sense: bool,
}

/// A cloneable poison-only handle on a group's barrier. Panic guards hold
/// one so a dying rank thread can fail the whole group without owning the
/// (non-`Clone`) [`ShmRank`].
#[derive(Debug, Clone)]
pub struct ShmPoisoner(Arc<ShmComm>);

impl ShmPoisoner {
    /// Poison the group barrier (see [`SenseBarrier::poison`]).
    pub fn poison(&self) {
        self.0.barrier.poison();
    }
}

impl ShmRank {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world(&self) -> usize {
        self.comm.slots.len()
    }

    /// Cross the group barrier (one arrival for this rank).
    pub fn barrier(&mut self) {
        self.comm.barrier.wait(&mut self.sense);
    }

    /// Poison the group barrier (see [`SenseBarrier::poison`]).
    pub fn poison(&self) {
        self.comm.barrier.poison();
    }

    pub fn is_poisoned(&self) -> bool {
        self.comm.barrier.is_poisoned()
    }

    /// A detached poison-only handle for panic guards.
    pub fn poisoner(&self) -> ShmPoisoner {
        ShmPoisoner(Arc::clone(&self.comm))
    }

    /// `[start, end)` of the chunk owned by `rank` when `len` elements are
    /// split across the world: near-even contiguous chunks, remainder spread
    /// over the leading ranks.
    fn chunk(&self, owner: usize, len: usize) -> (usize, usize) {
        let world = self.world();
        let q = len / world;
        let rem = len % world;
        let start = owner * q + owner.min(rem);
        let width = q + usize::from(owner < rem);
        (start, start + width)
    }

    /// In-place all-reduce (sum) of `buf` across all ranks: every rank calls
    /// this with its own equal-length buffer; on return every buffer holds
    /// the element-wise sum in rank order (bit-identical to
    /// [`CommGroup::allreduce_sum`](crate::collectives::CommGroup::allreduce_sum)).
    ///
    /// Performs zero heap allocations and no full-buffer copy: rank `r`
    /// reduces chunk `r` across the published peers (reduce-scatter), then
    /// copies each foreign owner's reduced chunk home (all-gather), with
    /// barriers separating publish / reduce / gather so no rank reads a
    /// chunk before its owner finished writing it, and no rank reclaims its
    /// buffer while a peer may still be reading.
    pub fn allreduce_sum(&mut self, buf: &mut [f32]) {
        let world = self.world();
        if world == 1 {
            return;
        }
        let len = buf.len();
        // Publish this rank's window.
        let slot = &self.comm.slots[self.rank];
        slot.ptr.store(buf.as_mut_ptr(), Ordering::Relaxed);
        slot.len.store(len, Ordering::Relaxed);
        // Barrier 1: every window is published; all pre-collective writes
        // to every buffer are visible.
        self.comm.barrier.wait(&mut self.sense);
        for (r, s) in self.comm.slots.iter().enumerate() {
            assert_eq!(
                s.len.load(Ordering::Relaxed),
                len,
                "allreduce requires equal buffer lengths (rank {r})"
            );
        }

        let (lo, hi) = self.chunk(self.rank, len);
        // Reduce-scatter: sum this rank's owned chunk across every rank's
        // published window, in rank order, writing the result into our own
        // window. Every pointer was published by a live `&mut [f32]` of
        // length `len` (checked above) and stays valid until barrier 3
        // releases the owners; `i < len` bounds every access.
        //
        // SAFETY: the only locations written between barriers 1 and 2 are
        // `own[lo..hi]`, disjoint from every peer's owned chunk, so no
        // unsynchronized access conflicts; reads of peer chunks race with
        // nothing because peers only write inside their own chunk.
        unsafe {
            let own = slot.ptr.load(Ordering::Relaxed);
            for i in lo..hi {
                let mut s = 0.0f32;
                for peer in &self.comm.slots {
                    s += *peer.ptr.load(Ordering::Relaxed).add(i);
                }
                *own.add(i) = s;
            }
        }
        // Barrier 2: every owned chunk is fully reduced.
        self.comm.barrier.wait(&mut self.sense);
        // All-gather: copy each foreign owner's reduced chunk from its
        // window into ours. Same pointer validity as the reduce-scatter.
        //
        // SAFETY: between barriers 2 and 3 this rank writes only
        // `own[c_lo..c_hi]` for owners != rank — regions no peer touches
        // (peers read only their own chunk of this window, and write only
        // foreign chunks of their own windows).
        unsafe {
            let own = slot.ptr.load(Ordering::Relaxed);
            for (owner, peer) in self.comm.slots.iter().enumerate() {
                if owner == self.rank {
                    continue;
                }
                let (c_lo, c_hi) = self.chunk(owner, len);
                std::ptr::copy_nonoverlapping(
                    peer.ptr.load(Ordering::Relaxed).add(c_lo),
                    own.add(c_lo),
                    c_hi - c_lo,
                );
            }
        }
        // Barrier 3: no rank may reuse (or free) its buffer until every
        // peer has finished gathering from it.
        self.comm.barrier.wait(&mut self.sense);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::CommGroup;
    use std::sync::Mutex;

    /// Run `world` threads, rank `r` executing `f(rank_handle, r)`.
    fn run_ranks<F>(world: usize, f: F)
    where
        F: Fn(ShmRank, usize) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = ShmComm::create(world)
            .into_iter()
            .enumerate()
            .map(|(r, h)| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f(h, r))
            })
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    #[test]
    fn allreduce_matches_comm_group_oracle() {
        for world in [1usize, 2, 3, 4] {
            for len in [1usize, 7, 32, 101] {
                let bufs: Vec<Vec<f32>> = (0..world)
                    .map(|r| (0..len).map(|i| ((r * len + i) as f32).sin()).collect())
                    .collect();
                let mut oracle = CommGroup::new(bufs.clone());
                oracle.allreduce_sum();
                let results = Arc::new(Mutex::new(vec![Vec::new(); world]));
                let results2 = Arc::clone(&results);
                run_ranks(world, move |mut h, r| {
                    let mut buf = bufs[r].clone();
                    h.allreduce_sum(&mut buf);
                    results2.lock().unwrap()[r] = buf;
                });
                let got = results.lock().unwrap();
                for r in 0..world {
                    assert_eq!(got[r], oracle.buffers[r], "world {world} len {len} rank {r}");
                }
            }
        }
    }

    #[test]
    fn repeated_allreduce_reuses_sense_correctly() {
        // Many rounds over the same communicator: a broken sense reversal
        // (or stale counter) would deadlock or mix rounds. Each round's
        // expected sum depends on the previous, so any cross-round leak
        // shows up numerically.
        let world = 4;
        let rounds = 200;
        run_ranks(world, move |mut h, r| {
            let mut buf = vec![r as f32 + 1.0; 16];
            for round in 0..rounds {
                h.allreduce_sum(&mut buf);
                let want = expected(world, round);
                assert!(
                    buf.iter().all(|&v| v == want),
                    "rank {r} round {round}: {} != {want}",
                    buf[0]
                );
                // Diverge again for the next round.
                for v in buf.iter_mut() {
                    *v = *v / want * (r as f32 + 1.0) + round as f32;
                }
            }
        });
        fn expected(world: usize, round: usize) -> f32 {
            // Closed form of the recurrence above: after the reduce every
            // rank holds sum(1..=world) (+ world * round' corrections).
            let base: f32 = (1..=world).map(|r| r as f32).sum();
            if round == 0 {
                base
            } else {
                base + world as f32 * (round - 1) as f32
            }
        }
    }

    #[test]
    fn world_one_is_identity() {
        let mut h = ShmComm::create(1).pop().unwrap();
        let mut buf = vec![3.0, 4.0];
        h.allreduce_sum(&mut buf);
        assert_eq!(buf, vec![3.0, 4.0]);
        h.barrier(); // trivially passes at world 1
    }

    #[test]
    fn uneven_chunks_cover_buffer() {
        // len not divisible by world: remainder chunks must still tile the
        // buffer exactly (the reduce result proves full coverage).
        for (world, len) in [(3usize, 10usize), (4, 5), (2, 1), (4, 3)] {
            let bufs: Vec<Vec<f32>> = (0..world).map(|r| vec![(r + 1) as f32; len]).collect();
            let want: f32 = (1..=world).map(|r| r as f32).sum();
            let results = Arc::new(Mutex::new(vec![Vec::new(); world]));
            let results2 = Arc::clone(&results);
            run_ranks(world, move |mut h, r| {
                let mut buf = bufs[r].clone();
                h.allreduce_sum(&mut buf);
                results2.lock().unwrap()[r] = buf;
            });
            for b in results.lock().unwrap().iter() {
                assert!(b.iter().all(|&v| v == want), "world {world} len {len}");
            }
        }
    }

    #[test]
    fn poisoned_barrier_panics_waiters() {
        let mut handles = ShmComm::create(2);
        let waiter = handles.pop().unwrap();
        let poisoner = handles.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut w = waiter;
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                w.barrier();
            }));
            caught.is_err()
        });
        // Give the waiter time to park in the spin loop, then poison
        // instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(10));
        poisoner.poison();
        assert!(t.join().unwrap(), "waiter must panic on poisoned barrier");
    }
}
