//! Shared-memory collectives: the *executed* counterpart of
//! [`crate::collectives`].
//!
//! [`CommGroup`](crate::collectives::CommGroup) is a functional oracle: it
//! owns every rank's buffer, runs on one thread, and clones freely. That is
//! the right tool for verifying schedule rewrites, but it cannot demonstrate
//! a tensor-parallel *speedup* — the paper's per-layer all-reduces
//! (Sec. IV-A) only pay off because ranks run concurrently and synchronize
//! through a fast intra-node fabric. On a multi-core CPU host the fabric is
//! the cache-coherent memory system, so this module provides the NCCL-role
//! equivalent for threaded ranks:
//!
//! * [`SenseBarrier`] — a sense-reversing centralized barrier: one atomic
//!   counter plus one atomic sense flag, reusable every round with no
//!   per-round state reset (each participant keeps a thread-local sense bit
//!   that flips per crossing). Waiters spin briefly then yield, so the
//!   barrier stays correct (if slow) even when ranks share one core.
//! * [`ShmComm`] / [`ShmRank`] — a communicator over `world` threads where
//!   each rank *stages* its buffer into a **group-owned window** (owned by
//!   the `ShmComm`, so it outlives any individual rank's failure) and the
//!   group runs a chunked all-reduce in the windows: rank `r` owns chunk
//!   `r`, sums that chunk across every rank's window (reduce-scatter), then
//!   copies the other owners' reduced chunks back (all-gather), and finally
//!   copies the result home. Three barrier crossings, no steady-state heap
//!   allocation (windows are reused across calls) — each element is read
//!   `world + 1` times and written three times, independent of `world`.
//!
//! The reduction order is fixed (rank 0, 1, …, world−1 per element), so a
//! shared-memory all-reduce is bit-identical to
//! [`CommGroup::allreduce_sum`](crate::collectives::CommGroup::allreduce_sum)
//! on the same inputs — the tests hold the two against each other.
//!
//! ## Fault tolerance
//!
//! Every rendezvous is **bounded**: [`ShmRank::try_barrier`] and
//! [`ShmRank::try_allreduce_sum`] spin briefly, then yield with a deadline,
//! and return a typed [`CollectiveError`] instead of hanging when a peer
//! never arrives ([`CollectiveErrorKind::Timeout`], naming the stalled
//! peers via the barrier's per-rank arrival heartbeats), when the group is
//! poisoned by a dead peer ([`CollectiveErrorKind::Poisoned`] — previously a
//! follow-on panic), or when the optional per-chunk checksum catches a
//! corrupted reduce-scatter chunk ([`CollectiveErrorKind::Corrupt`]). The
//! legacy panicking wrappers ([`ShmRank::barrier`],
//! [`ShmRank::allreduce_sum`]) remain for callers without a recovery path.
//!
//! Failure never leaves dangling pointers behind: a timed-out rendezvous
//! poisons the group (so a straggler cannot complete it late and run ahead
//! alone), and the data windows peers read during an all-reduce are owned
//! by the `ShmComm` itself — kept alive by every rank handle's `Arc`, even
//! a detached one — so a rank that errors out and frees its caller-side
//! buffers can never invalidate memory a slow peer is still reading.
//!
//! A [`CommConfig`] can also install a [`FaultInjector`]: a deterministic,
//! fire-once fault script (stalls, dropped arrivals, panics, chunk
//! corruption) threaded through the same hooks — one `Option` check per
//! call when disabled, so the fault path costs nothing in production.
//!
//! The collective *program* this engine executes per buffer —
//! barrier / reduce-scatter / barrier / all-gather / barrier — is modelled
//! statically in `dsi-verify::collective::tp_exec_allreduce_programs`, so
//! the race detector can prove the per-layer schedule deadlock-free (and a
//! seeded missing-barrier control proves the detector still fires).

use crate::fault::{apply_stall, CollectiveError, CollectiveErrorKind, FaultInjector, FaultKind};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many busy spins to burn before yielding the core. Small: on a
/// saturated or single-core host the barrier degrades to cooperative
/// scheduling instead of burning a quantum per crossing.
const SPINS_BEFORE_YIELD: u32 = 64;

/// How many yields between deadline checks: `Instant::now()` per yield would
/// dominate a contended crossing, so the timeout is only probed every
/// `YIELDS_PER_CLOCK_CHECK` rounds (timeouts are coarse by design).
const YIELDS_PER_CLOCK_CHECK: u32 = 256;

/// Group-wide collective configuration: rendezvous timeout, optional
/// per-chunk checksums on the all-reduce, optional fault injection.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// Bound on every barrier rendezvous. A peer that has not arrived by the
    /// deadline produces [`CollectiveErrorKind::Timeout`] instead of a hang.
    pub timeout: Duration,
    /// Verify every gathered reduce-scatter chunk against the owner's
    /// published checksum (catches corruption between reduce and gather).
    pub checksum: bool,
    /// Deterministic fault script consulted at each hook; `None` disables
    /// injection at the cost of one pointer check per collective call.
    pub injector: Option<Arc<FaultInjector>>,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig { timeout: Duration::from_secs(5), checksum: false, injector: None }
    }
}

/// Sense-reversing centralized barrier for a fixed party count.
///
/// Every participant holds its own sense bit (see [`ShmRank`]) and flips it
/// each crossing; the last arriver resets the counter and publishes the new
/// global sense, releasing the spinners. Unlike `std::sync::Barrier` there
/// is no generation bookkeeping or mutex — two atomics, both on one cache
/// line, reused forever.
///
/// A participant that panics would strand the others mid-spin, so the
/// barrier carries a poison flag: [`SenseBarrier::poison`] fails every
/// current and future waiter — as a panic through [`SenseBarrier::wait`], or
/// as a typed [`CollectiveErrorKind::Poisoned`] through
/// [`SenseBarrier::try_wait`]. A bounded waiter that times out poisons the
/// barrier itself on the way out, so one departed party fails the whole
/// group instead of leaving a half-counted crossing a straggler could
/// complete alone. Each party also publishes an arrival heartbeat (its
/// crossing count), which [`SenseBarrier::try_wait`] reads on timeout to
/// name the stalled peers.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
    /// Per-party arrival heartbeat: the number of crossings the party has
    /// *arrived* at. Written at each arrival, read by peers on timeout.
    arrivals: Vec<AtomicU64>,
}

impl SenseBarrier {
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            arrivals: (0..parties).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Cross the barrier. `local_sense` is the caller's thread-local sense
    /// bit (start every participant at `false` and pass the same variable to
    /// every crossing).
    ///
    /// Unbounded: waits forever for missing peers. Prefer
    /// [`SenseBarrier::try_wait`] where a recovery path exists.
    ///
    /// # Panics
    /// Panics if the barrier is [poisoned](Self::poison) — a peer died and
    /// the rendezvous can never complete.
    pub fn wait(&self, local_sense: &mut bool) {
        let target = !*local_sense;
        *local_sense = target;
        // AcqRel: the arrival both publishes this thread's writes (release)
        // and, for the last arriver, observes every peer's writes (acquire)
        // before it releases them all via the sense store.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("shmem barrier poisoned: a peer rank panicked");
            }
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != target {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("shmem barrier poisoned: a peer rank panicked");
                }
                if spins < SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Cross the barrier with a bounded wait. `party` is the caller's party
    /// index (for the arrival heartbeat), `epoch` its count of *previous*
    /// crossings. Fails typed instead of spinning forever:
    /// [`CollectiveErrorKind::Poisoned`] if a peer died,
    /// [`CollectiveErrorKind::Timeout`] (naming the peers whose heartbeat
    /// still lags) if the rendezvous misses the deadline.
    ///
    /// A timeout **poisons** the barrier before the waiter departs: a
    /// timed-out rendezvous can never validly complete, so a straggler that
    /// finally arrives must observe the failure (and fail typed itself)
    /// rather than complete the crossing with already-departed peers and
    /// proceed alone.
    pub fn try_wait(
        &self,
        party: usize,
        epoch: u64,
        local_sense: &mut bool,
        timeout: Duration,
    ) -> Result<(), CollectiveErrorKind> {
        let target = !*local_sense;
        *local_sense = target;
        self.arrivals[party].store(epoch + 1, Ordering::Relaxed);
        // AcqRel: as in `wait` — publish our writes, and for the releaser,
        // observe everyone's.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Never release peers into a poisoned crossing: if any party
            // timed out (or died) here, it has already departed — a late
            // completion would let the survivors run ahead without it.
            if self.poisoned.load(Ordering::Relaxed) {
                return Err(CollectiveErrorKind::Poisoned);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
            return Ok(());
        }
        let mut spins = 0u32;
        let mut yields = 0u32;
        let mut deadline: Option<Instant> = None;
        while self.sense.load(Ordering::Acquire) != target {
            if self.poisoned.load(Ordering::Relaxed) {
                return Err(CollectiveErrorKind::Poisoned);
            }
            if spins < SPINS_BEFORE_YIELD {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            std::thread::yield_now();
            yields += 1;
            if !yields.is_multiple_of(YIELDS_PER_CLOCK_CHECK) {
                continue;
            }
            let now = Instant::now();
            match deadline {
                // First clock check: arm the deadline (keeps `Instant::now`
                // entirely off the spin-release fast path).
                None => deadline = now.checked_add(timeout),
                Some(d) if now >= d => {
                    // Poison *before* departing: the count increment above
                    // stays behind, so a straggler arriving later could
                    // otherwise complete the rendezvous without us and run
                    // ahead alone (the poison check on the releaser path
                    // turns that into a typed failure instead).
                    self.poison();
                    let stalled = self
                        .arrivals
                        .iter()
                        .enumerate()
                        .filter(|&(p, a)| p != party && a.load(Ordering::Relaxed) <= epoch)
                        .map(|(p, _)| p)
                        .collect();
                    return Err(CollectiveErrorKind::Timeout { stalled });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Mark the group dead: every rank currently or subsequently waiting
    /// fails (typed via [`try_wait`](Self::try_wait), by panic via
    /// [`wait`](Self::wait)) instead of hanging. Called from rank panic
    /// guards so one failing rank fails the whole group loudly.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// One rank's published window for the in-flight all-reduce: base pointer +
/// length, published by the owner before the publish barrier and read by
/// peers between barriers, plus the owner's chunk checksum when
/// [`CommConfig::checksum`] is on.
///
/// The backing store (`win`) is **group-owned**: it lives inside the
/// [`ShmComm`], which every rank handle — including a detached, wedged
/// worker thread — keeps alive through its `Arc`. A rank that errors out of
/// a collective and drops its caller-side buffers therefore can never
/// invalidate the window a slow peer is still reading; windows are freed
/// only when the last handle drops.
#[derive(Debug)]
struct Slot {
    /// Group-owned backing store for the window. Resized and staged only by
    /// the owner rank, strictly outside the barrier-fenced shared phases
    /// (see the protocol on [`ShmRank::try_allreduce_sum`]); peers access it
    /// exclusively through the published `ptr`.
    win: UnsafeCell<Vec<f32>>,
    ptr: AtomicPtr<f32>,
    len: AtomicUsize,
    /// Order-sensitive fold of the owner's reduced chunk bits, published
    /// between the reduce and gather phases.
    sum: AtomicU64,
}

/// Shared state of a thread group: one slot per rank plus the barrier.
/// Create with [`ShmComm::create`] (default config) or
/// [`ShmComm::create_with`], which hand out one [`ShmRank`] per rank; the
/// `ShmComm` itself stays behind an `Arc` inside the handles.
#[derive(Debug)]
pub struct ShmComm {
    slots: Vec<Slot>,
    barrier: SenseBarrier,
    cfg: CommConfig,
}

// SAFETY: `Slot::win` is the only non-`Sync` field. Access to it is
// synchronized by the collective protocol rather than a lock: the owner
// rank mutates its own window (resize + staging copy + result copy-out)
// only outside the barrier-fenced shared phases, and peers read it (through
// the published raw pointer, never a reference) only between barriers 1
// and 3 of an all-reduce the owner entered — the barrier's release/acquire
// chain orders the staging writes before every peer read. A failed
// rendezvous poisons the group (see `SenseBarrier::try_wait`), so no rank
// can start a new collective — and thus restage or reallocate a window —
// while a straggler from a failed one may still be reading.
unsafe impl Sync for ShmComm {}

impl ShmComm {
    /// Build a `world`-rank communicator with the default [`CommConfig`] and
    /// return the per-rank handles, in rank order. Each handle must move to
    /// (at most) one thread.
    pub fn create(world: usize) -> Vec<ShmRank> {
        Self::create_with(world, CommConfig::default())
    }

    /// [`ShmComm::create`] with an explicit timeout/checksum/injection
    /// configuration.
    pub fn create_with(world: usize, cfg: CommConfig) -> Vec<ShmRank> {
        assert!(world >= 1, "communicator needs at least one rank");
        let comm = Arc::new(ShmComm {
            slots: (0..world)
                .map(|_| Slot {
                    win: UnsafeCell::new(Vec::new()),
                    ptr: AtomicPtr::new(std::ptr::null_mut()),
                    len: AtomicUsize::new(0),
                    sum: AtomicU64::new(0),
                })
                .collect(),
            barrier: SenseBarrier::new(world),
            cfg,
        });
        (0..world)
            .map(|rank| ShmRank { comm: Arc::clone(&comm), rank, sense: false, epoch: 0 })
            .collect()
    }
}

/// Order-sensitive fold of a chunk's f32 bit patterns: cheap enough to run
/// inline with the reduce, sensitive to any single-element flip or swap.
fn chunk_checksum(chunk: &[f32]) -> u64 {
    chunk
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(1) ^ u64::from(v.to_bits()))
}

/// A rank's handle on a [`ShmComm`]: carries the rank id, the thread-local
/// barrier sense, and the rank's collective epoch (barrier crossings
/// attempted — its heartbeat). Not `Clone` — exactly one handle per rank,
/// so each collective call is one arrival per rank.
#[derive(Debug)]
pub struct ShmRank {
    comm: Arc<ShmComm>,
    rank: usize,
    sense: bool,
    epoch: u64,
}

/// A cloneable poison-only handle on a group's barrier. Panic guards hold
/// one so a dying rank thread can fail the whole group without owning the
/// (non-`Clone`) [`ShmRank`].
#[derive(Debug, Clone)]
pub struct ShmPoisoner(Arc<ShmComm>);

impl ShmPoisoner {
    /// Poison the group barrier (see [`SenseBarrier::poison`]).
    pub fn poison(&self) {
        self.0.barrier.poison();
    }
}

impl ShmRank {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world(&self) -> usize {
        self.comm.slots.len()
    }

    /// The rank's collective epoch: barrier crossings attempted so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The group's fault injector, if one is installed.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.comm.cfg.injector.as_ref()
    }

    /// The group's collective configuration.
    pub fn config(&self) -> &CommConfig {
        &self.comm.cfg
    }

    /// Cross the group barrier (one arrival for this rank), panicking on
    /// poison — the legacy wrapper over [`ShmRank::try_barrier`].
    pub fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            panic!("shmem barrier failed: {e}");
        }
    }

    /// Cross the group barrier with the configured timeout. Consults the
    /// fault injector first (stall → sleep then arrive; dropped arrival →
    /// typed [`CollectiveErrorKind::InjectedExit`] without arriving, so
    /// peers observe a timeout naming this rank; panic → panics here).
    pub fn try_barrier(&mut self) -> Result<(), CollectiveError> {
        let epoch = self.epoch;
        if let Some(inj) = &self.comm.cfg.injector {
            match inj.at_barrier(self.rank, epoch) {
                Some(FaultKind::Stall { millis }) => apply_stall(millis),
                Some(FaultKind::Exit) => {
                    return Err(self.err(CollectiveErrorKind::InjectedExit, epoch));
                }
                Some(FaultKind::Panic) => {
                    panic!("injected fault: rank {} panics at barrier epoch {epoch}", self.rank)
                }
                Some(FaultKind::Corrupt) | None => {}
            }
        }
        self.epoch += 1;
        self.comm
            .barrier
            .try_wait(self.rank, epoch, &mut self.sense, self.comm.cfg.timeout)
            .map_err(|kind| self.err(kind, epoch))
    }

    fn err(&self, kind: CollectiveErrorKind, epoch: u64) -> CollectiveError {
        CollectiveError { rank: self.rank, kind, epoch }
    }

    /// Poison the group barrier (see [`SenseBarrier::poison`]).
    pub fn poison(&self) {
        self.comm.barrier.poison();
    }

    pub fn is_poisoned(&self) -> bool {
        self.comm.barrier.is_poisoned()
    }

    /// A detached poison-only handle for panic guards.
    pub fn poisoner(&self) -> ShmPoisoner {
        ShmPoisoner(Arc::clone(&self.comm))
    }

    /// `[start, end)` of the chunk owned by `rank` when `len` elements are
    /// split across the world: near-even contiguous chunks, remainder spread
    /// over the leading ranks.
    fn chunk(&self, owner: usize, len: usize) -> (usize, usize) {
        let world = self.world();
        let q = len / world;
        let rem = len % world;
        let start = owner * q + owner.min(rem);
        let width = q + usize::from(owner < rem);
        (start, start + width)
    }

    /// In-place all-reduce (sum), panicking on failure — the legacy wrapper
    /// over [`ShmRank::try_allreduce_sum`].
    pub fn allreduce_sum(&mut self, buf: &mut [f32]) {
        if let Err(e) = self.try_allreduce_sum(buf) {
            panic!("shmem allreduce failed: {e}");
        }
    }

    /// In-place all-reduce (sum) of `buf` across all ranks: every rank calls
    /// this with its own equal-length buffer; on success every buffer holds
    /// the element-wise sum in rank order (bit-identical to
    /// [`CommGroup::allreduce_sum`](crate::collectives::CommGroup::allreduce_sum)).
    ///
    /// The reduction runs in the group-owned windows: each rank stages `buf`
    /// into its window and publishes it, then rank `r` reduces chunk `r`
    /// across every published window (reduce-scatter), copies each foreign
    /// owner's reduced chunk into its own window (all-gather), and finally
    /// copies the result home, with barriers separating publish / reduce /
    /// gather so no rank reads a chunk before its owner finished writing it,
    /// and no rank restages its window while a peer may still be reading.
    /// Steady state performs no heap allocation (windows are reused across
    /// calls); group ownership of the windows means a rank that fails out of
    /// the collective — even one whose caller then frees `buf` — can never
    /// dangle a pointer a slow peer still dereferences.
    ///
    /// Every rendezvous is bounded by the configured timeout; with
    /// [`CommConfig::checksum`] on, each gathered chunk is verified against
    /// the owner's published checksum and a mismatch fails the group with
    /// [`CollectiveErrorKind::Corrupt`] instead of propagating silent wrong
    /// numbers. On any failure `buf` is left unchanged.
    pub fn try_allreduce_sum(&mut self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        let world = self.world();
        if world == 1 {
            return Ok(());
        }
        // Epoch of this all-reduce's first crossing: the reduce-site key for
        // the fault injector.
        let epoch0 = self.epoch;
        let len = buf.len();
        // Stage into the group-owned window and publish it. (Cloning the Arc
        // keeps the slot borrow disjoint from the `&mut self` the barrier
        // crossings need.)
        let comm = Arc::clone(&self.comm);
        let slot = &comm.slots[self.rank];
        // SAFETY: `win` is this rank's own window and no collective is in
        // flight — peers finished reading it at barrier 3 of the previous
        // call, or the group is poisoned and no peer passes another barrier —
        // so the owner may mutate (even reallocate) the Vec exclusively.
        unsafe {
            let win = &mut *slot.win.get();
            win.clear();
            win.extend_from_slice(buf);
            slot.ptr.store(win.as_mut_ptr(), Ordering::Relaxed);
        }
        slot.len.store(len, Ordering::Relaxed);
        // Barrier 1: every window is published; all staging writes to every
        // window are visible.
        self.try_barrier()?;
        for (r, s) in self.comm.slots.iter().enumerate() {
            assert_eq!(
                s.len.load(Ordering::Relaxed),
                len,
                "allreduce requires equal buffer lengths (rank {r})"
            );
        }

        let (lo, hi) = self.chunk(self.rank, len);
        // Reduce-scatter: sum this rank's owned chunk across every rank's
        // published window, in rank order, writing the result into our own
        // window. Every pointer targets a group-owned window of length `len`
        // (checked above) that lives as long as the `ShmComm` — i.e. as long
        // as any rank handle exists — so it stays valid even if a peer fails
        // out of the collective mid-phase; `i < len` bounds every access.
        //
        // SAFETY: the only locations written between barriers 1 and 2 are
        // `own[lo..hi]`, disjoint from every peer's owned chunk, so no
        // unsynchronized access conflicts; reads of peer chunks race with
        // nothing because peers only write inside their own chunk.
        unsafe {
            let own = slot.ptr.load(Ordering::Relaxed);
            for i in lo..hi {
                let mut s = 0.0f32;
                for peer in &self.comm.slots {
                    s += *peer.ptr.load(Ordering::Relaxed).add(i);
                }
                *own.add(i) = s;
            }
            if self.comm.cfg.checksum {
                // Publish the owned chunk's checksum before anyone gathers.
                // SAFETY: `own[lo..hi]` is this rank's exclusive window
                // region until barrier 3, published at length `len` above.
                let chunk = std::slice::from_raw_parts(own.add(lo), hi - lo);
                slot.sum.store(chunk_checksum(chunk), Ordering::Relaxed);
            }
            if let Some(inj) = &self.comm.cfg.injector {
                match inj.at_reduce(self.rank, epoch0) {
                    Some(FaultKind::Corrupt) if hi > lo => {
                        // Flip one element of the reduced chunk *after* the
                        // checksum was published — the "corrupted transfer"
                        // model the gather-side verification must catch.
                        let p = own.add(lo);
                        *p = f32::from_bits((*p).to_bits() ^ 0x0040_0000);
                    }
                    Some(FaultKind::Corrupt) => {}
                    Some(FaultKind::Stall { millis }) => apply_stall(millis),
                    Some(FaultKind::Exit) => {
                        return Err(self.err(CollectiveErrorKind::InjectedExit, epoch0));
                    }
                    Some(FaultKind::Panic) => {
                        panic!(
                            "injected fault: rank {} panics in reduce at epoch {epoch0}",
                            self.rank
                        )
                    }
                    None => {}
                }
            }
        }
        // Barrier 2: every owned chunk is fully reduced.
        self.try_barrier()?;
        // All-gather: copy each foreign owner's reduced chunk from its
        // window into ours, verifying checksums when enabled. Same
        // group-ownership pointer validity as the reduce-scatter.
        let mut corrupt: Option<usize> = None;
        // SAFETY: between barriers 2 and 3 this rank writes only
        // `own[c_lo..c_hi]` for owners != rank — regions no peer touches
        // (peers read only their own chunk of this window, and write only
        // foreign chunks of their own windows).
        unsafe {
            let own = slot.ptr.load(Ordering::Relaxed);
            for (owner, peer) in self.comm.slots.iter().enumerate() {
                if owner == self.rank {
                    continue;
                }
                let (c_lo, c_hi) = self.chunk(owner, len);
                std::ptr::copy_nonoverlapping(
                    peer.ptr.load(Ordering::Relaxed).add(c_lo),
                    own.add(c_lo),
                    c_hi - c_lo,
                );
                if self.comm.cfg.checksum && corrupt.is_none() {
                    // SAFETY: `own[c_lo..c_hi]` was just written by this
                    // rank and no peer touches it (see region argument
                    // above).
                    let got = std::slice::from_raw_parts(own.add(c_lo), c_hi - c_lo);
                    if chunk_checksum(got) != peer.sum.load(Ordering::Relaxed) {
                        corrupt = Some(owner);
                    }
                }
            }
        }
        if let Some(owner) = corrupt {
            // The data plane is compromised: fail the whole group rather
            // than let one rank decode on corrupt activations.
            self.poison();
            return Err(self.err(CollectiveErrorKind::Corrupt { owner }, epoch0));
        }
        // Barrier 3: no rank may restage its window until every peer has
        // finished gathering from it.
        self.try_barrier()?;
        // Copy the fully-reduced vector home, only on success — a failed
        // rendezvous leaves `buf` untouched.
        //
        // SAFETY: the window holds `len` reduced elements; barrier 3
        // completed, so every peer's reads of it happened-before this point
        // and nobody touches it until this rank stages its next collective.
        unsafe {
            let win = &*slot.win.get();
            buf.copy_from_slice(&win[..len]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::CommGroup;
    use crate::fault::{FaultPlan, FaultSite, FaultSpec};
    use std::sync::Mutex;

    /// Run `world` threads, rank `r` executing `f(rank_handle, r)`.
    fn run_ranks<F>(world: usize, f: F)
    where
        F: Fn(ShmRank, usize) + Send + Sync + 'static,
    {
        run_ranks_with(world, CommConfig::default(), f);
    }

    fn run_ranks_with<F>(world: usize, cfg: CommConfig, f: F)
    where
        F: Fn(ShmRank, usize) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let handles: Vec<_> = ShmComm::create_with(world, cfg)
            .into_iter()
            .enumerate()
            .map(|(r, h)| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f(h, r))
            })
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    #[test]
    fn allreduce_matches_comm_group_oracle() {
        for world in [1usize, 2, 3, 4] {
            for len in [1usize, 7, 32, 101] {
                let bufs: Vec<Vec<f32>> = (0..world)
                    .map(|r| (0..len).map(|i| ((r * len + i) as f32).sin()).collect())
                    .collect();
                let mut oracle = CommGroup::new(bufs.clone());
                oracle.allreduce_sum();
                let results = Arc::new(Mutex::new(vec![Vec::new(); world]));
                let results2 = Arc::clone(&results);
                run_ranks(world, move |mut h, r| {
                    let mut buf = bufs[r].clone();
                    h.allreduce_sum(&mut buf);
                    results2.lock().unwrap()[r] = buf;
                });
                let got = results.lock().unwrap();
                for r in 0..world {
                    assert_eq!(got[r], oracle.buffers[r], "world {world} len {len} rank {r}");
                }
            }
        }
    }

    #[test]
    fn checksummed_allreduce_is_bit_identical_to_plain() {
        // Checksums are pure observation: the reduced values must not change.
        let world = 4;
        let len = 37;
        let bufs: Vec<Vec<f32>> = (0..world)
            .map(|r| (0..len).map(|i| ((r * len + i) as f32).cos()).collect())
            .collect();
        let mut oracle = CommGroup::new(bufs.clone());
        oracle.allreduce_sum();
        let results = Arc::new(Mutex::new(vec![Vec::new(); world]));
        let results2 = Arc::clone(&results);
        let cfg = CommConfig { checksum: true, ..CommConfig::default() };
        run_ranks_with(world, cfg, move |mut h, r| {
            let mut buf = bufs[r].clone();
            h.try_allreduce_sum(&mut buf).expect("clean run");
            results2.lock().unwrap()[r] = buf;
        });
        let got = results.lock().unwrap();
        for r in 0..world {
            assert_eq!(got[r], oracle.buffers[r], "rank {r}");
        }
    }

    #[test]
    fn repeated_allreduce_reuses_sense_correctly() {
        // Many rounds over the same communicator: a broken sense reversal
        // (or stale counter) would deadlock or mix rounds. Each round's
        // expected sum depends on the previous, so any cross-round leak
        // shows up numerically.
        let world = 4;
        let rounds = 200;
        run_ranks(world, move |mut h, r| {
            let mut buf = vec![r as f32 + 1.0; 16];
            for round in 0..rounds {
                h.allreduce_sum(&mut buf);
                let want = expected(world, round);
                assert!(
                    buf.iter().all(|&v| v == want),
                    "rank {r} round {round}: {} != {want}",
                    buf[0]
                );
                // Diverge again for the next round.
                for v in buf.iter_mut() {
                    *v = *v / want * (r as f32 + 1.0) + round as f32;
                }
            }
        });
        fn expected(world: usize, round: usize) -> f32 {
            // Closed form of the recurrence above: after the reduce every
            // rank holds sum(1..=world) (+ world * round' corrections).
            let base: f32 = (1..=world).map(|r| r as f32).sum();
            if round == 0 {
                base
            } else {
                base + world as f32 * (round - 1) as f32
            }
        }
    }

    #[test]
    fn world_one_is_identity() {
        let mut h = ShmComm::create(1).pop().unwrap();
        let mut buf = vec![3.0, 4.0];
        h.allreduce_sum(&mut buf);
        assert_eq!(buf, vec![3.0, 4.0]);
        h.barrier(); // trivially passes at world 1
    }

    #[test]
    fn uneven_chunks_cover_buffer() {
        // len not divisible by world: remainder chunks must still tile the
        // buffer exactly (the reduce result proves full coverage).
        for (world, len) in [(3usize, 10usize), (4, 5), (2, 1), (4, 3)] {
            let bufs: Vec<Vec<f32>> = (0..world).map(|r| vec![(r + 1) as f32; len]).collect();
            let want: f32 = (1..=world).map(|r| r as f32).sum();
            let results = Arc::new(Mutex::new(vec![Vec::new(); world]));
            let results2 = Arc::clone(&results);
            run_ranks(world, move |mut h, r| {
                let mut buf = bufs[r].clone();
                h.allreduce_sum(&mut buf);
                results2.lock().unwrap()[r] = buf;
            });
            for b in results.lock().unwrap().iter() {
                assert!(b.iter().all(|&v| v == want), "world {world} len {len}");
            }
        }
    }

    #[test]
    fn poisoned_barrier_panics_waiters() {
        let mut handles = ShmComm::create(2);
        let waiter = handles.pop().unwrap();
        let poisoner = handles.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut w = waiter;
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                w.barrier();
            }));
            caught.is_err()
        });
        // Give the waiter time to park in the spin loop, then poison
        // instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(10));
        poisoner.poison();
        assert!(t.join().unwrap(), "waiter must panic on poisoned barrier");
    }

    #[test]
    fn poisoned_barrier_is_a_typed_error_not_a_panic() {
        // Satellite fix: the poison flag surfaces as CollectiveError through
        // the try path instead of a follow-on panic.
        let mut handles = ShmComm::create(2);
        let waiter = handles.pop().unwrap();
        let poisoner = handles.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut w = waiter;
            w.try_barrier()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        poisoner.poison();
        let err = t.join().expect("no panic").expect_err("typed error");
        assert_eq!(err.kind, CollectiveErrorKind::Poisoned);
        assert_eq!(err.rank, 1);
    }

    #[test]
    fn barrier_timeout_names_the_stalled_peer() {
        // Rank 0 never arrives: ranks 1 and 2 must fail typed within the
        // bound. The first to time out poisons the group on the way out, so
        // each waiter reports either Timeout naming rank 0 (and only rank 0)
        // or the propagated Poisoned — and at least one observes the
        // Timeout itself.
        let cfg = CommConfig { timeout: Duration::from_millis(100), ..CommConfig::default() };
        let mut handles = ShmComm::create_with(3, cfg);
        let _absent = handles.remove(0); // rank 0 drops its arrival
        let threads: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                std::thread::spawn(move || {
                    let start = Instant::now();
                    let err = h.try_barrier().expect_err("must fail typed");
                    (err, start.elapsed())
                })
            })
            .collect();
        let mut timeouts = 0;
        for t in threads {
            let (err, waited) = t.join().unwrap();
            match err.kind {
                CollectiveErrorKind::Timeout { ref stalled } => {
                    assert_eq!(stalled, &[0], "{err}");
                    timeouts += 1;
                }
                CollectiveErrorKind::Poisoned => {}
                ref k => panic!("expected Timeout or Poisoned, got {k:?}"),
            }
            assert_eq!(err.epoch, 0);
            assert!(waited < Duration::from_secs(5), "bounded wait, took {waited:?}");
        }
        assert!(timeouts >= 1, "at least one waiter must report the timeout itself");
    }

    #[test]
    fn late_arriver_cannot_complete_a_timed_out_rendezvous() {
        // Regression for the use-after-free window: rank 0 times out (its
        // count increment stays behind) and departs; rank 1 arrives late as
        // the nominal "last arriver". It must observe the poison and fail
        // typed instead of completing the crossing alone and running ahead
        // into the data phases on a departed peer.
        let cfg = CommConfig { timeout: Duration::from_millis(50), ..CommConfig::default() };
        let mut handles = ShmComm::create_with(2, cfg);
        let mut late = handles.pop().unwrap();
        let mut early = handles.pop().unwrap();
        let e0 = early.try_barrier().expect_err("peer is late beyond the deadline");
        assert!(
            matches!(e0.kind, CollectiveErrorKind::Timeout { ref stalled } if stalled == &[1]),
            "{e0}"
        );
        // Rank 0 has departed (and in a real group may already be tearing
        // its buffers down); the straggler's arrival must fail.
        let e1 = late.try_barrier().expect_err("stale rendezvous must not complete");
        assert_eq!(e1.kind, CollectiveErrorKind::Poisoned, "{e1}");
    }

    #[test]
    fn injected_exit_drops_arrival_and_peers_time_out() {
        // The scripted "crashed rank" model: rank 1 observes InjectedExit,
        // rank 0 observes a timeout naming rank 1.
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 0 },
            kind: crate::fault::FaultKind::Exit,
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(100),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let mut handles = ShmComm::create_with(2, cfg);
        let mut r1 = handles.pop().unwrap();
        let mut r0 = handles.pop().unwrap();
        let t = std::thread::spawn(move || r1.try_barrier());
        let e0 = r0.try_barrier().expect_err("peer never arrives");
        let e1 = t.join().unwrap().expect_err("scripted exit");
        assert_eq!(e1.kind, CollectiveErrorKind::InjectedExit);
        assert!(
            matches!(e0.kind, CollectiveErrorKind::Timeout { ref stalled } if stalled == &[1]),
            "{e0}"
        );
    }

    #[test]
    fn injected_corruption_is_caught_by_checksum() {
        // Rank 0's owned chunk is flipped after its checksum is published:
        // every gathering peer must fail typed with Corrupt{owner: 0}, and
        // nobody may return Ok with silently wrong numbers.
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 0,
            site: FaultSite::Reduce { epoch: 0 },
            kind: crate::fault::FaultKind::Corrupt,
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(500),
            checksum: true,
            injector: Some(Arc::new(plan.injector())),
        };
        let results = Arc::new(Mutex::new(Vec::new()));
        let results2 = Arc::clone(&results);
        run_ranks_with(2, cfg, move |mut h, r| {
            let mut buf = vec![r as f32 + 1.0; 8];
            let out = h.try_allreduce_sum(&mut buf);
            results2.lock().unwrap().push((r, out));
        });
        let got = results.lock().unwrap();
        let rank1 = got.iter().find(|(r, _)| *r == 1).unwrap();
        match &rank1.1 {
            Err(CollectiveError { kind: CollectiveErrorKind::Corrupt { owner: 0 }, .. }) => {}
            other => panic!("rank 1 must detect rank 0's corruption, got {other:?}"),
        }
    }

    #[test]
    fn stalled_peer_mid_allreduce_fails_typed_without_running_ahead() {
        // The review's use-after-free scenario: rank 1 stalls past the
        // timeout inside the all-reduce (at barrier 2), rank 0 times out,
        // returns, and immediately frees its buffer. The woken straggler
        // must fail typed at its next crossing — never complete the
        // rendezvous alone and gather from the departed rank — and the
        // group-owned windows keep every published pointer valid while it
        // gets there. Both ranks' buffers must come back unchanged (a
        // failed all-reduce writes nothing home).
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 1 }, // barrier 2 of the all-reduce
            kind: crate::fault::FaultKind::Stall { millis: 400 },
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_millis(100),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let results = Arc::new(Mutex::new(Vec::new()));
        let results2 = Arc::clone(&results);
        run_ranks_with(2, cfg, move |mut h, r| {
            let mut buf = vec![r as f32 + 1.0; 64];
            let out = h.try_allreduce_sum(&mut buf);
            // Rank 0 returns first and `buf` drops right here while rank 1
            // is still asleep mid-collective — safe, because peers read
            // group-owned windows, never this Vec.
            results2.lock().unwrap().push((r, buf.clone(), out));
        });
        let got = results.lock().unwrap();
        for (r, buf, out) in got.iter() {
            assert!(out.is_err(), "rank {r} must fail typed");
            assert!(
                buf.iter().all(|&v| v == *r as f32 + 1.0),
                "rank {r}: failed all-reduce must leave the buffer unchanged"
            );
        }
    }

    #[test]
    fn injected_stall_delays_but_completes() {
        // A stall shorter than the timeout is transparent: the all-reduce
        // completes with correct sums.
        let plan = FaultPlan::new(vec![FaultSpec {
            rank: 1,
            site: FaultSite::Barrier { epoch: 0 },
            kind: crate::fault::FaultKind::Stall { millis: 20 },
        }]);
        let cfg = CommConfig {
            timeout: Duration::from_secs(2),
            injector: Some(Arc::new(plan.injector())),
            ..CommConfig::default()
        };
        let results = Arc::new(Mutex::new(vec![Vec::new(); 2]));
        let results2 = Arc::clone(&results);
        run_ranks_with(2, cfg, move |mut h, r| {
            let mut buf = vec![r as f32 + 1.0; 8];
            h.try_allreduce_sum(&mut buf).expect("stall is transient");
            results2.lock().unwrap()[r] = buf;
        });
        for b in results.lock().unwrap().iter() {
            assert!(b.iter().all(|&v| v == 3.0));
        }
    }
}
