//! Rank placement and link resolution over a [`ClusterSpec`].
//!
//! Ranks are laid out node-major: rank `r` lives on node `r / gpus_per_node`,
//! local slot `r % gpus_per_node`. This matches the NCCL default and the
//! paper's parallelism layout where tensor-parallel groups occupy consecutive
//! ranks inside a node (Sec. IV-A: "tensor parallelism is often restricted to
//! groups of GPUs sharing the high-bandwidth interconnect within a node").

use crate::hw::{ClusterSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// Resolved view of a cluster for communication routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    pub cluster: ClusterSpec,
}

/// Where a rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    pub node: usize,
    pub local: usize,
}

impl Topology {
    pub fn new(cluster: ClusterSpec) -> Self {
        Topology { cluster }
    }

    pub fn world_size(&self) -> usize {
        self.cluster.total_gpus()
    }

    pub fn placement(&self, rank: usize) -> Placement {
        let g = self.cluster.node.gpus_per_node;
        Placement {
            node: rank / g,
            local: rank % g,
        }
    }

    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.placement(a).node == self.placement(b).node
    }

    /// Effective point-to-point link between two GPU ranks.
    ///
    /// Intra-node traffic rides NVLink/NVSwitch; inter-node traffic is
    /// bottlenecked by the per-node network injection bandwidth. When a
    /// collective drives many rank pairs across the same node boundary
    /// concurrently the caller divides by the number of concurrent flows
    /// (see [`crate::collectives`]).
    pub fn p2p_link(&self, a: usize, b: usize) -> LinkSpec {
        assert!(a < self.world_size() && b < self.world_size());
        if a == b {
            // Device-local copy: HBM-to-HBM at memory bandwidth.
            LinkSpec::new(self.cluster.node.gpu.mem_bw / 2.0, 0.0)
        } else if self.same_node(a, b) {
            self.cluster.node.intra_link
        } else {
            LinkSpec::new(self.cluster.inter_bw, self.cluster.inter_latency)
        }
    }

    /// Split `group` by node; returns (ranks-per-node buckets, #nodes spanned).
    pub fn group_node_span(&self, group: &[usize]) -> (Vec<usize>, usize) {
        let mut per_node = vec![0usize; self.cluster.nodes];
        for &r in group {
            per_node[self.placement(r).node] += 1;
        }
        let spanned = per_node.iter().filter(|&&c| c > 0).count();
        (per_node, spanned)
    }

    /// The slowest (bottleneck) link a ring over `group` must traverse, with
    /// inter-node hops sharing the node's injection bandwidth among
    /// `flows_per_boundary` concurrent flows.
    pub fn ring_bottleneck(&self, group: &[usize]) -> LinkSpec {
        assert!(!group.is_empty());
        if group.len() == 1 {
            return LinkSpec::new(f64::INFINITY, 0.0);
        }
        let (per_node, spanned) = self.group_node_span(group);
        if spanned <= 1 {
            return self.cluster.node.intra_link;
        }
        // A node-major ring crosses each node boundary once in each
        // direction; the injection bandwidth is shared by the ranks of the
        // group on that node only to the extent they send cross-node
        // simultaneously. In a ring, exactly one rank per node sends
        // cross-node at a time, so a full rail is available to it — but many
        // parallel rings (tensor-parallel groups stacked in a node) share it.
        let max_ranks_per_node = per_node.iter().copied().max().unwrap_or(1).max(1);
        let inter_bw = self.cluster.inter_bw / max_ranks_per_node as f64;
        let intra = self.cluster.node.intra_link;
        if inter_bw < intra.bw {
            LinkSpec::new(inter_bw, self.cluster.inter_latency)
        } else {
            intra
        }
    }

    /// Ranks of the tensor-parallel group containing `rank`, given TP degree
    /// `tp`. Consecutive ranks, aligned to `tp`.
    pub fn tp_group(&self, rank: usize, tp: usize) -> Vec<usize> {
        let base = (rank / tp) * tp;
        (base..base + tp).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::NodeSpec;

    fn cluster() -> Topology {
        Topology::new(ClusterSpec::dgx_a100(4)) // 32 GPUs
    }

    #[test]
    fn placement_node_major() {
        let t = cluster();
        assert_eq!(t.placement(0), Placement { node: 0, local: 0 });
        assert_eq!(t.placement(7), Placement { node: 0, local: 7 });
        assert_eq!(t.placement(8), Placement { node: 1, local: 0 });
        assert_eq!(t.placement(31), Placement { node: 3, local: 7 });
    }

    #[test]
    fn p2p_intra_vs_inter() {
        let t = cluster();
        let intra = t.p2p_link(0, 7);
        let inter = t.p2p_link(0, 8);
        assert!(intra.bw > inter.bw);
        assert!(intra.latency < inter.latency);
    }

    #[test]
    fn ring_bottleneck_single_node_is_nvlink() {
        let t = cluster();
        let g: Vec<usize> = (0..8).collect();
        let b = t.ring_bottleneck(&g);
        assert_eq!(b.bw, t.cluster.node.intra_link.bw);
    }

    #[test]
    fn ring_bottleneck_cross_node_is_network() {
        let t = cluster();
        let g: Vec<usize> = (0..16).collect();
        let b = t.ring_bottleneck(&g);
        assert!(b.bw < t.cluster.node.intra_link.bw);
    }

    #[test]
    fn tp_group_aligned() {
        let t = cluster();
        assert_eq!(t.tp_group(5, 4), vec![4, 5, 6, 7]);
        assert_eq!(t.tp_group(8, 8), vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::new(ClusterSpec::single(NodeSpec::lambda_a6000()));
        assert_eq!(t.world_size(), 2);
        assert!(t.same_node(0, 1));
    }

    #[test]
    fn group_node_span_counts() {
        let t = cluster();
        let (per_node, spanned) = t.group_node_span(&[0, 1, 8, 9, 10]);
        assert_eq!(per_node[0], 2);
        assert_eq!(per_node[1], 3);
        assert_eq!(spanned, 2);
    }
}
