//! Schedule introspection: Chrome-trace export and ASCII Gantt rendering.
//!
//! Every simulated schedule (pipeline runs, offload timelines, ZeRO
//! streaming) can be dumped to the Chrome `chrome://tracing` / Perfetto JSON
//! format for visual inspection, or rendered as a terminal Gantt chart —
//! the debugging surface a scheduling system needs.

use crate::engine::{Resource, Schedule, TaskGraph};
use std::fmt::Write as _;

fn resource_name(r: Resource) -> String {
    match r {
        Resource::Compute(i) => format!("gpu{i}.compute"),
        Resource::CopyH2D(i) => format!("gpu{i}.h2d"),
        Resource::CopyD2H(i) => format!("gpu{i}.d2h"),
        Resource::Network(i) => format!("gpu{i}.net"),
        Resource::Nvme(i) => format!("node{i}.nvme"),
        Resource::Host(i) => format!("node{i}.cpu"),
    }
}

fn resource_lane(graph: &TaskGraph) -> Vec<(Resource, String)> {
    let mut lanes: Vec<(Resource, String)> = Vec::new();
    for t in graph.tasks() {
        if !lanes.iter().any(|(r, _)| *r == t.resource) {
            lanes.push((t.resource, resource_name(t.resource)));
        }
    }
    lanes.sort_by(|a, b| a.1.cmp(&b.1));
    lanes
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize a schedule as Chrome trace-event JSON (complete events, one
/// lane per resource; timestamps in microseconds).
pub fn chrome_trace(graph: &TaskGraph, schedule: &Schedule) -> String {
    let lanes = resource_lane(graph);
    let tid = |r: Resource| lanes.iter().position(|(x, _)| *x == r).unwrap();
    let mut out = String::from("[");
    // Lane metadata.
    for (i, (_, name)) in lanes.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}},",
            json_escape(name)
        );
    }
    for (id, task) in graph.tasks().iter().enumerate() {
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\
             \"ts\":{:.3},\"dur\":{:.3}}}{}",
            tid(task.resource),
            json_escape(&task.label),
            schedule.start[id] * 1e6,
            (schedule.end[id] - schedule.start[id]) * 1e6,
            if id + 1 == graph.len() { "" } else { "," }
        );
    }
    out.push(']');
    out
}

/// Render an ASCII Gantt chart, `width` characters across the makespan.
pub fn gantt(graph: &TaskGraph, schedule: &Schedule, width: usize) -> String {
    let lanes = resource_lane(graph);
    let span = schedule.makespan.max(1e-12);
    let label_w = lanes.iter().map(|(_, n)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (res, name) in &lanes {
        let mut row = vec![' '; width];
        for (id, task) in graph.tasks().iter().enumerate() {
            if task.resource != *res {
                continue;
            }
            let s = ((schedule.start[id] / span) * width as f64) as usize;
            let e = (((schedule.end[id] / span) * width as f64).ceil() as usize)
                .clamp(s + 1, width);
            let ch = task.label.chars().next().unwrap_or('#');
            for c in row.iter_mut().take(e.min(width)).skip(s.min(width - 1)) {
                *c = ch;
            }
        }
        let _ = writeln!(out, "{name:>label_w$} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>label_w$}  0{:>w$.3}s", "", span, w = width - 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Resource, TaskGraph};

    fn sample() -> (TaskGraph, Schedule) {
        let mut g = TaskGraph::new();
        let a = g.add("alpha", Resource::Compute(0), 1.0, &[]);
        let b = g.add("beta", Resource::CopyH2D(0), 0.5, &[a]);
        g.add("gamma", Resource::Compute(1), 2.0, &[b]);
        let s = g.simulate();
        (g, s)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_tasks() {
        let (g, s) = sample();
        let trace = chrome_trace(&g, &s);
        let parsed: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = parsed.as_array().unwrap();
        let complete: Vec<_> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(complete.len(), 3);
        assert!(complete.iter().any(|e| e["name"] == "alpha"));
        // Durations in microseconds.
        let alpha = complete.iter().find(|e| e["name"] == "alpha").unwrap();
        assert!((alpha["dur"].as_f64().unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn chrome_trace_escapes_quotes() {
        let mut g = TaskGraph::new();
        g.add("say \"hi\"", Resource::Compute(0), 1.0, &[]);
        let s = g.simulate();
        let trace = chrome_trace(&g, &s);
        assert!(serde_json::from_str::<serde_json::Value>(&trace).is_ok());
    }

    #[test]
    fn gantt_has_one_row_per_resource() {
        let (g, s) = sample();
        let chart = gantt(&g, &s, 40);
        let rows: Vec<&str> = chart.lines().collect();
        assert_eq!(rows.len(), 4); // 3 lanes + time axis
        assert!(rows[0].contains('|'));
        // The compute(0) lane shows 'a' (alpha) early.
        let lane0 = rows.iter().find(|r| r.contains("gpu0.compute")).unwrap();
        assert!(lane0.contains('a'));
    }

    #[test]
    fn gantt_positions_reflect_schedule() {
        let (g, s) = sample();
        let chart = gantt(&g, &s, 35);
        // gamma runs in the second half of the makespan (starts at 1.5/3.5).
        let lane = chart
            .lines()
            .find(|r| r.contains("gpu1.compute"))
            .unwrap();
        let bar: String = lane.chars().skip_while(|&c| c != '|').collect();
        let first_g = bar.find('g').unwrap();
        assert!(first_g > bar.len() / 3, "gamma drawn too early: {bar}");
    }
}
