//! Adversarial stress test for the shared-memory collective backend: hammer
//! the sense-reversing barrier and chunked all-reduce from concurrently
//! running ranks whose relative timing is deliberately skewed every round
//! (spin delays + forced reschedules from a per-rank LCG), across buffer
//! lengths that exercise every chunking edge case (len < world, len not
//! divisible by world, len == 0). Any missed barrier crossing, stale sense
//! bit, or torn chunk shows up as a wrong sum or a hang.

use dsi_sim::shmem::ShmComm;
use std::thread;

const WORLD: usize = 4;
const ROUNDS: usize = 300;
const MAX_LEN: usize = 67;

/// Deterministic per-rank noise source (no external RNG in dev-deps here,
/// and determinism keeps failures reproducible).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Round-dependent buffer length: sweeps 0..MAX_LEN including values below,
/// equal to, and coprime with WORLD.
fn round_len(round: usize) -> usize {
    (round * 13 + 7) % MAX_LEN
}

fn contribution(rank: usize, round: usize, i: usize) -> f32 {
    // Small integers: the all-reduce sum is exact in f32, so equality is
    // checked with ==, not a tolerance.
    ((rank * 31 + round * 7 + i * 3) % 64) as f32
}

#[test]
fn allreduce_survives_adversarial_interleavings() {
    let ranks = ShmComm::create(WORLD);
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|mut comm| {
            thread::spawn(move || {
                let rank = comm.rank();
                let mut noise = 0x9e3779b97f4a7c15u64 ^ (rank as u64);
                let mut buf = vec![0.0f32; MAX_LEN];
                for round in 0..ROUNDS {
                    let len = round_len(round);
                    for (i, v) in buf[..len].iter_mut().enumerate() {
                        *v = contribution(rank, round, i);
                    }
                    // Adversarial skew: each rank enters the collective at a
                    // different, round-varying offset, so every round samples
                    // a different interleaving of publish/reduce/gather.
                    match lcg(&mut noise) % 4 {
                        0 => {}
                        1 => thread::yield_now(),
                        2 => {
                            for _ in 0..(lcg(&mut noise) % 2000) {
                                std::hint::spin_loop();
                            }
                        }
                        _ => {
                            thread::yield_now();
                            thread::yield_now();
                        }
                    }
                    comm.allreduce_sum(&mut buf[..len]);
                    for (i, &v) in buf[..len].iter().enumerate() {
                        let want: f32 =
                            (0..WORLD).map(|r| contribution(r, round, i)).sum();
                        assert_eq!(
                            v, want,
                            "rank {rank} round {round} len {len} index {i}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress rank panicked");
    }
}

/// The barrier alone, raced hard: ranks count rounds in relaxed shared
/// counters and every crossing must observe all increments from the round
/// before (the barrier's release/acquire chain is the only synchronization).
#[test]
fn barrier_publishes_prior_round_writes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const ROUNDS: usize = 2000;
    let counters: Arc<Vec<AtomicUsize>> =
        Arc::new((0..WORLD).map(|_| AtomicUsize::new(0)).collect());
    let ranks = ShmComm::create(WORLD);
    let handles: Vec<_> = ranks
        .into_iter()
        .map(|mut comm| {
            let counters = Arc::clone(&counters);
            thread::spawn(move || {
                let rank = comm.rank();
                let mut noise = 0xdeadbeefu64 ^ (rank as u64);
                for round in 0..ROUNDS {
                    counters[rank].store(round + 1, Ordering::Relaxed);
                    if lcg(&mut noise).is_multiple_of(3) {
                        thread::yield_now();
                    }
                    comm.barrier();
                    for (r, c) in counters.iter().enumerate() {
                        let seen = c.load(Ordering::Relaxed);
                        assert!(
                            seen > round,
                            "rank {rank} crossed round-{round} barrier but sees rank {r} at {seen}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("barrier rank panicked");
    }
}
