//! Pass 4 — unsafe-kernel source audit.
//!
//! The SIMD kernels (`dsi-kernels::{blocked,fused,simd}`) earn their speed
//! with `unsafe`: raw pointer arithmetic, `get_unchecked`, and
//! `#[target_feature]` intrinsics. The audit enforces the workspace's
//! hygiene contract *textually*, so it catches new unsafe code the moment
//! it is written, before review:
//!
//! * every `unsafe {` block must carry a `// SAFETY:` comment on the same
//!   line or within the few lines directly above it;
//! * every `unsafe fn` must document its preconditions with a `# Safety`
//!   section in its doc comment.
//!
//! This is a lint over source text, not a soundness proof — the proof
//! obligations live in the `// SAFETY:` comments themselves and in the
//! `debug_assert!` contracts the kernels check at their boundaries. The
//! compiler side of the contract is `#![deny(unsafe_op_in_unsafe_fn)]` in
//! `dsi-kernels`, which forces every unsafe operation into an explicit
//! block this audit can see.

use crate::{Diagnostic, Pass};

/// How many lines above an `unsafe {` token a `// SAFETY:` comment may sit.
const SAFETY_LOOKBACK: usize = 4;

/// Strip line comments and string literals from one source line, returning
/// `(code, had_safety_comment, had_safety_doc)`.
///
/// String stripping is line-local (the kernels contain no multi-line string
/// literals) and keeps the audit dependency-free — this is a lint, not a
/// parser.
fn classify_line(line: &str) -> (String, bool, bool) {
    let trimmed = line.trim_start();
    let is_doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => {
                comment = chars.collect();
                break;
            }
            _ => code.push(c),
        }
    }
    let has_safety_comment = comment.trim_start().trim_start_matches('/').trim_start().starts_with("SAFETY");
    let has_safety_doc = is_doc && line.contains("# Safety");
    (code, has_safety_comment, has_safety_doc)
}

/// Audit one source file. `path` is used only for diagnostic provenance.
pub fn scan_unsafe(path: &str, text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let classified: Vec<(String, bool, bool)> = lines.iter().map(|l| classify_line(l)).collect();

    for (i, (code, _, _)) in classified.iter().enumerate() {
        let mut rest = code.as_str();
        while let Some(pos) = rest.find("unsafe") {
            // Token boundary: reject identifiers like `not_unsafe`.
            let before_ok = pos == 0
                || !rest[..pos].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = &rest[pos + "unsafe".len()..];
            let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !(before_ok && after_ok) {
                rest = &rest[pos + "unsafe".len()..];
                continue;
            }
            let tail = after.trim_start();
            if tail.starts_with("fn") {
                // `unsafe fn` — look upward through the contiguous doc/attr
                // block for a `# Safety` section.
                let mut j = i;
                let mut documented = false;
                while j > 0 {
                    j -= 1;
                    let raw = lines[j].trim_start();
                    let is_attached = raw.starts_with("///")
                        || raw.starts_with("//!")
                        || raw.starts_with("#[")
                        || raw.starts_with("//");
                    if !is_attached {
                        break;
                    }
                    if classified[j].2 {
                        documented = true;
                        break;
                    }
                }
                if !documented {
                    diags.push(Diagnostic::new(
                        Pass::Audit,
                        "missing-safety-doc",
                        format!("{path}:{}", i + 1),
                        "`unsafe fn` without a `# Safety` doc section stating its preconditions",
                    ));
                }
            } else if tail.starts_with('{') || tail.is_empty() {
                // `unsafe {` block (brace possibly on the next line) — look
                // for `// SAFETY:` on this line or just above.
                let lo = i.saturating_sub(SAFETY_LOOKBACK);
                let commented = (lo..=i).any(|j| classified[j].1);
                if !commented {
                    diags.push(Diagnostic::new(
                        Pass::Audit,
                        "missing-safety-comment",
                        format!("{path}:{}", i + 1),
                        "`unsafe` block without a `// SAFETY:` comment justifying it",
                    ));
                }
            }
            // `unsafe impl` / `unsafe trait` are not used in this workspace;
            // if they appear they are neither block nor fn and pass through.
            rest = after;
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commented_block_passes() {
        let src = r#"
fn f(x: &[f32]) -> f32 {
    // SAFETY: idx is bounds-checked by the caller contract above.
    unsafe { *x.get_unchecked(0) }
}
"#;
        assert!(scan_unsafe("a.rs", src).is_empty());
    }

    #[test]
    fn uncommented_block_flagged_with_line() {
        let src = "fn f(x: &[f32]) -> f32 {\n    unsafe { *x.get_unchecked(0) }\n}\n";
        let d = scan_unsafe("k.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "missing-safety-comment");
        assert_eq!(d[0].site, "k.rs:2");
    }

    #[test]
    fn safety_comment_too_far_away_flagged() {
        let mut src = String::from("// SAFETY: stale justification.\n");
        for _ in 0..6 {
            src.push_str("let x = 1;\n");
        }
        src.push_str("unsafe { core::hint::unreachable_unchecked() }\n");
        let d = scan_unsafe("k.rs", &src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn documented_unsafe_fn_passes() {
        let src = r#"
/// Does a thing.
///
/// # Safety
/// `p` must be valid for reads of `n` floats.
#[inline]
unsafe fn load(p: *const f32, n: usize) {}
"#;
        assert!(scan_unsafe("a.rs", src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_fn_flagged() {
        let src = "unsafe fn oops(p: *const f32) {}\n";
        let d = scan_unsafe("k.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "missing-safety-doc");
    }

    #[test]
    fn unsafe_inside_comment_or_string_ignored() {
        let src = "// this mentions unsafe { } in prose\nlet s = \"unsafe { }\";\n";
        assert!(scan_unsafe("a.rs", src).is_empty());
    }

    #[test]
    fn identifier_containing_unsafe_ignored() {
        let src = "fn not_unsafe_fn() { let my_unsafe_flag = true; }\n";
        assert!(scan_unsafe("a.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_on_same_line_passes() {
        let src = "let v = unsafe { f() }; // SAFETY: f has no preconditions.\n";
        assert!(scan_unsafe("a.rs", src).is_empty());
    }
}
