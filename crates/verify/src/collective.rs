//! Pass 3 — collective-order race detector.
//!
//! Tensor slicing (Sec. IV-A) only works if every rank of a communication
//! group issues the *same* collective sequence with the *same* byte counts:
//! NCCL-style collectives match by call order, so one rank skipping an
//! all-reduce (or sharding it differently) hangs or corrupts the whole
//! group. Pipeline parallelism (Sec. IV-B) adds point-to-point send/recv
//! pairs that must rendezvous, and schedules that must be acyclic.
//!
//! Programs are modelled per rank as ordered lists of [`Op`]s. Two
//! detectors:
//! * [`check_lockstep`] — the cheap static check: project each rank's
//!   program onto one group's collectives and require identical sequences
//!   (kind + bytes), with per-step rank/op provenance on mismatch;
//! * [`simulate_rendezvous`] — the general detector: advance all ranks under
//!   rendezvous semantics (a collective completes when every member is at
//!   it; a send completes when its peer is at the matching recv). Programs
//!   that stop progressing are deadlocks; the diagnostic lists every stuck
//!   rank and the op it is blocked on.
//!
//! Pipeline task graphs get a structural check ([`check_pipeline`]): the
//! graph must be acyclic ([`find_cycle`] over an explicit edge list, so the
//! property suite can feed genuinely cyclic graphs) and every inter-stage
//! transfer must be a matched compute→network→compute hop.

use crate::{Diagnostic, Pass};
use dsi_parallel::mapping::Mapping3D;
use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};
use dsi_sim::engine::{Resource, TaskGraph};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Group collectives (matched across all members of `group`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CollKind {
    AllReduce,
    AllGather,
    ReduceScatter,
    AllToAll,
    Broadcast,
    /// Pure synchronization, no payload (the shared-memory engine's
    /// sense-reversing barrier). `bytes` is 0 by convention.
    Barrier,
}

/// One communication call issued by a rank.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Op {
    /// A collective over `group` (must include the issuing rank).
    Coll {
        kind: CollKind,
        group: Vec<usize>,
        bytes: u64,
        tag: String,
    },
    /// Blocking send to `to`.
    Send { to: usize, bytes: u64, tag: String },
    /// Blocking receive from `from`.
    Recv { from: usize, bytes: u64, tag: String },
}

impl Op {
    pub fn coll(kind: CollKind, group: Vec<usize>, bytes: u64, tag: impl Into<String>) -> Self {
        Op::Coll { kind, group, bytes, tag: tag.into() }
    }

    fn describe(&self) -> String {
        match self {
            Op::Coll { kind, bytes, tag, .. } => format!("{kind:?}({bytes}B, `{tag}`)"),
            Op::Send { to, bytes, tag } => format!("Send(to {to}, {bytes}B, `{tag}`)"),
            Op::Recv { from, bytes, tag } => format!("Recv(from {from}, {bytes}B, `{tag}`)"),
        }
    }
}

/// Per-rank communication programs.
pub type Programs = BTreeMap<usize, Vec<Op>>;

/// Static lock-step check of one group: every member must issue the same
/// sequence of collectives over that group, with matching kinds and byte
/// counts. Returns all mismatches with rank/step/op provenance.
pub fn check_lockstep(group: &[usize], programs: &Programs) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let project = |rank: usize| -> Vec<&Op> {
        programs
            .get(&rank)
            .map(|ops| {
                ops.iter()
                    .filter(|op| matches!(op, Op::Coll { group: g, .. } if g == group))
                    .collect()
            })
            .unwrap_or_default()
    };
    let Some((&lead, rest)) = group.split_first() else {
        return diags;
    };
    let want = project(lead);
    for &rank in rest {
        let got = project(rank);
        if got.len() != want.len() {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "collective-mismatch",
                format!("group {group:?} rank {rank}"),
                format!(
                    "issues {} collectives over this group but rank {lead} issues {}",
                    got.len(),
                    want.len()
                ),
            ));
        }
        for (step, (a, b)) in want.iter().zip(&got).enumerate() {
            if let (
                Op::Coll { kind: ka, bytes: ba, tag: ta, .. },
                Op::Coll { kind: kb, bytes: bb, tag: tb, .. },
            ) = (a, b)
            {
                if ka != kb {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "collective-mismatch",
                        format!("group {group:?} step {step}"),
                        format!(
                            "rank {lead} issues {ka:?} (`{ta}`) but rank {rank} issues {kb:?} (`{tb}`)"
                        ),
                    ));
                } else if ba != bb {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "collective-mismatch",
                        format!("group {group:?} step {step}"),
                        format!(
                            "rank {lead} moves {ba} bytes in `{ta}` but rank {rank} moves {bb} bytes in `{tb}`"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Advance all ranks under rendezvous semantics until every program drains
/// or no rank can make progress. A collective fires when every group member
/// is blocked at it (kind and bytes must then agree — disagreement is
/// reported and the group resynchronized so analysis continues). A send
/// fires when its peer is blocked at the matching recv. Anything left
/// blocked at quiescence is a deadlock, reported with every stuck rank and
/// the op it waits on.
pub fn simulate_rendezvous(programs: &Programs) -> Vec<Diagnostic> {
    simulate_rendezvous_with_exits(programs, &ExitPlan::new())
}

/// Rank exit script for [`simulate_rendezvous_with_exits`]: rank → op index
/// at which the rank dies. The rank executes ops `0..idx` normally and
/// never issues another (modelling "rank exits at epoch *e*" — a worker
/// panic, scripted `FaultKind::Exit`, or a crashed process).
pub type ExitPlan = BTreeMap<usize, usize>;

fn rank_dead(
    dead: &BTreeSet<usize>,
    exits: &ExitPlan,
    pc: &BTreeMap<usize, usize>,
    r: usize,
) -> bool {
    dead.contains(&r)
        || exits
            .get(&r)
            .is_some_and(|&at| pc.get(&r).is_some_and(|&i| i >= at))
}

/// [`simulate_rendezvous`] extended with the hardened runtime's abort
/// semantics: ranks listed in `exits` die at the scripted op index, and any
/// survivor blocked on a collective / send / recv involving a dead rank does
/// **not** hang — its bounded-timeout wait converts the loss into a typed
/// `collective-abort` diagnostic (mirroring `CollectiveError` in
/// `dsi_sim::fault`) and the survivor stops issuing ops, exactly like a
/// worker returning an error. Only ranks left *silently* blocked at
/// quiescence — stuck on live peers — are reported as deadlocks.
pub fn simulate_rendezvous_with_exits(programs: &Programs, exits: &ExitPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut pc: BTreeMap<usize, usize> = programs.keys().map(|&r| (r, 0)).collect();
    // Ranks that stopped issuing ops: scripted exits (checked via
    // `rank_dead`) plus survivors whose wait aborted with a typed error.
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    let head = |pc: &BTreeMap<usize, usize>, r: usize| -> Option<&Op> {
        programs.get(&r).and_then(|ops| ops.get(*pc.get(&r)?))
    };

    loop {
        let mut progressed = false;
        let ranks: Vec<usize> = pc.keys().copied().collect();
        for &r in &ranks {
            if rank_dead(&dead, exits, &pc, r) {
                continue;
            }
            let Some(op) = head(&pc, r) else { continue };
            match op {
                Op::Coll { kind, group, bytes, tag } => {
                    if !group.contains(&r) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "collective-mismatch",
                            format!("rank {r} (`{tag}`)"),
                            format!("issues a collective over group {group:?} it is not a member of"),
                        ));
                        *pc.get_mut(&r).unwrap() += 1;
                        progressed = true;
                        continue;
                    }
                    // A dead member never arrives: the survivor's bounded
                    // spin times out and surfaces a typed error.
                    let lost: Vec<usize> = group
                        .iter()
                        .copied()
                        .filter(|&g| rank_dead(&dead, exits, &pc, g))
                        .collect();
                    if !lost.is_empty() {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "collective-abort",
                            format!("rank {r} (`{tag}`)"),
                            format!(
                                "peer(s) {lost:?} exited before this collective; the timeout \
                                 converts the wait into a typed CollectiveError instead of a hang"
                            ),
                        ));
                        dead.insert(r);
                        progressed = true;
                        continue;
                    }
                    // Fire only when every member sits at a collective over
                    // the same group.
                    let mut members = Vec::with_capacity(group.len());
                    let mut all_here = true;
                    for &g in group {
                        match head(&pc, g) {
                            Some(Op::Coll { kind: k2, group: g2, bytes: b2, tag: t2 })
                                if g2 == group =>
                            {
                                members.push((g, *k2, *b2, t2.clone()));
                            }
                            _ => {
                                all_here = false;
                                break;
                            }
                        }
                    }
                    if !all_here {
                        continue;
                    }
                    for &(g, k2, b2, ref t2) in &members[1..] {
                        let (g0, k0, b0, ref t0) = members[0];
                        if k2 != k0 {
                            diags.push(Diagnostic::new(
                                Pass::Collective,
                                "collective-mismatch",
                                format!("group {group:?}"),
                                format!("rank {g0} issues {k0:?} (`{t0}`) but rank {g} issues {k2:?} (`{t2}`)"),
                            ));
                        } else if b2 != b0 {
                            diags.push(Diagnostic::new(
                                Pass::Collective,
                                "collective-mismatch",
                                format!("group {group:?}"),
                                format!("rank {g0} moves {b0} bytes (`{t0}`) but rank {g} moves {b2} (`{t2}`)"),
                            ));
                        }
                    }
                    let _ = (kind, bytes);
                    for &(g, ..) in &members {
                        *pc.get_mut(&g).unwrap() += 1;
                    }
                    progressed = true;
                }
                Op::Send { to, bytes, tag } => {
                    let (to, bytes, tag) = (*to, *bytes, tag.clone());
                    if rank_dead(&dead, exits, &pc, to) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "collective-abort",
                            format!("rank {r} (`{tag}`)"),
                            format!("peer {to} exited before the matching recv; send times out with a typed error"),
                        ));
                        dead.insert(r);
                        progressed = true;
                        continue;
                    }
                    if let Some(Op::Recv { from, bytes: rb, tag: rt }) = head(&pc, to) {
                        if *from == r {
                            if *rb != bytes {
                                diags.push(Diagnostic::new(
                                    Pass::Collective,
                                    "collective-mismatch",
                                    format!("ranks {r}->{to}"),
                                    format!(
                                        "send `{tag}` carries {bytes} bytes but recv `{rt}` expects {rb}"
                                    ),
                                ));
                            }
                            *pc.get_mut(&r).unwrap() += 1;
                            *pc.get_mut(&to).unwrap() += 1;
                            progressed = true;
                        }
                    }
                }
                Op::Recv { from, tag, .. } => {
                    // Normally fired from the sending side; a dead sender
                    // never arrives, so the recv times out typed.
                    if rank_dead(&dead, exits, &pc, *from) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "collective-abort",
                            format!("rank {r} (`{tag}`)"),
                            format!("sender {from} exited before the matching send; recv times out with a typed error"),
                        ));
                        dead.insert(r);
                        progressed = true;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let stuck: Vec<String> = pc
        .iter()
        .filter_map(|(&r, &i)| {
            if rank_dead(&dead, exits, &pc, r) {
                return None; // exited or typed-aborted, not silently stuck
            }
            programs.get(&r).and_then(|ops| ops.get(i)).map(|op| format!("rank {r} blocked at op {i}: {}", op.describe()))
        })
        .collect();
    if !stuck.is_empty() {
        diags.push(Diagnostic::new(
            Pass::Collective,
            "deadlock",
            format!("{} rank(s)", stuck.len()),
            stuck.join("; "),
        ));
    }
    diags
}

/// Full check of a set of programs over the given groups: lock-step per
/// group plus rendezvous simulation.
pub fn check_programs(groups: &[Vec<usize>], programs: &Programs) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for g in groups {
        diags.extend(check_lockstep(g, programs));
    }
    diags.extend(simulate_rendezvous(programs));
    diags
}

/// Exit-safety proof obligation: under the scripted `exits`, every surviving
/// rank must either drain its program or surface a **typed**
/// `collective-abort` — those aborts are the *expected* outcome of the
/// hardened runtime and are filtered out; everything else (above all
/// `deadlock`: a survivor silently blocked on live peers) is returned as a
/// defect.
pub fn check_exit_safety(programs: &Programs, exits: &ExitPlan) -> Vec<Diagnostic> {
    simulate_rendezvous_with_exits(programs, exits)
        .into_iter()
        .filter(|d| d.code != "collective-abort")
        .collect()
}

// ---------------------------------------------------------------------------
// Program builders for the workspace's parallelism mappings.
// ---------------------------------------------------------------------------

/// The tensor-parallel collective program of a dense model under `mapping`:
/// every rank issues two all-reduces per layer (after the attention-output
/// and FF2 row-parallel GEMMs, Sec. IV-A) over its TP group, each moving the
/// full activation (`bytes`).
pub fn tp_allreduce_programs(mapping: &Mapping3D, layers: usize, bytes: u64) -> (Vec<Vec<usize>>, Programs) {
    let mut groups = Vec::new();
    let mut programs = Programs::new();
    for rank in 0..mapping.world_size() {
        let group = mapping.tp_group(rank);
        if group[0] == rank {
            groups.push(group.clone());
        }
        let ops = (0..layers)
            .flat_map(|l| {
                [
                    Op::coll(CollKind::AllReduce, group.clone(), bytes, format!("layer{l}.attn_out")),
                    Op::coll(CollKind::AllReduce, group.clone(), bytes, format!("layer{l}.ff2")),
                ]
            })
            .collect();
        programs.insert(rank, ops);
    }
    (groups, programs)
}

/// The shared-memory backend's expansion of one in-place all-reduce
/// (`dsi_sim::shmem::ShmRank::allreduce_sum`): a publish barrier so every
/// rank's buffer pointer is visible, a chunked reduce-scatter where rank *r*
/// reduces chunk *r* of every buffer in place, a barrier so all chunks are
/// final before anyone reads a remote one, an all-gather copying the reduced
/// chunks into each local buffer, and a release barrier so no rank unpublishes
/// a buffer another rank is still reading.
pub fn shmem_allreduce_ops(group: &[usize], bytes: u64, tag: &str) -> Vec<Op> {
    vec![
        Op::coll(CollKind::Barrier, group.to_vec(), 0, format!("{tag}.publish")),
        Op::coll(CollKind::ReduceScatter, group.to_vec(), bytes, format!("{tag}.reduce")),
        Op::coll(CollKind::Barrier, group.to_vec(), 0, format!("{tag}.reduced")),
        Op::coll(CollKind::AllGather, group.to_vec(), bytes, format!("{tag}.gather")),
        Op::coll(CollKind::Barrier, group.to_vec(), 0, format!("{tag}.release")),
    ]
}

/// The collective program the *executed* tensor-parallel engine
/// (`dsi-parallel::tp_exec::TpSession`) runs per forward step over its
/// `world` threaded ranks: one step-dispatch barrier (the driver publishes
/// the command/token, workers pick it up), then per layer the two
/// row-parallel all-reduces of Sec. IV-A (attention output and FF2), each
/// expanded into the shared-memory backend's barrier-fenced
/// reduce-scatter + all-gather sequence. With `world == 1` the engine's
/// all-reduce is a no-op early return, so only the step barrier remains.
pub fn tp_exec_allreduce_programs(
    world: usize,
    layers: usize,
    bytes: u64,
) -> (Vec<Vec<usize>>, Programs) {
    let group: Vec<usize> = (0..world).collect();
    let mut programs = Programs::new();
    for rank in 0..world {
        let mut ops = vec![Op::coll(CollKind::Barrier, group.clone(), 0, "step.dispatch")];
        if world > 1 {
            for l in 0..layers {
                ops.extend(shmem_allreduce_ops(&group, bytes, &format!("layer{l}.attn_out")));
                ops.extend(shmem_allreduce_ops(&group, bytes, &format!("layer{l}.ff2")));
            }
        }
        programs.insert(rank, ops);
    }
    (vec![group], programs)
}

/// The pipeline point-to-point program: within each (dp, tp) pipeline
/// group, stage `s` receives each micro-batch's activation from stage `s-1`,
/// then sends its own output to stage `s+1`.
pub fn pp_p2p_programs(mapping: &Mapping3D, microbatches: usize, bytes: u64) -> Programs {
    let mut programs = Programs::new();
    for rank in 0..mapping.world_size() {
        let c = mapping.coord(rank);
        let pp_group = mapping.pp_group(rank);
        let mut ops = Vec::new();
        for mb in 0..microbatches {
            if c.pp > 0 {
                ops.push(Op::Recv {
                    from: pp_group[c.pp - 1],
                    bytes,
                    tag: format!("mb{mb}.act_in"),
                });
            }
            if c.pp + 1 < mapping.pp {
                ops.push(Op::Send {
                    to: pp_group[c.pp + 1],
                    bytes,
                    tag: format!("mb{mb}.act_out"),
                });
            }
        }
        programs.insert(rank, ops);
    }
    programs
}

/// The expert-parallel program of an MoE model: `gpus` ranks in groups of
/// `ep`, each issuing two all-to-alls (dispatch + combine) per MoE layer.
pub fn ep_alltoall_programs(gpus: usize, ep: usize, moe_layers: usize, bytes: u64) -> (Vec<Vec<usize>>, Programs) {
    assert!(ep >= 1 && gpus >= ep && gpus.is_multiple_of(ep), "ep must divide gpus");
    let mut groups = Vec::new();
    let mut programs = Programs::new();
    for base in (0..gpus).step_by(ep) {
        let group: Vec<usize> = (base..base + ep).collect();
        groups.push(group.clone());
        for &rank in &group {
            let ops = (0..moe_layers)
                .flat_map(|l| {
                    [
                        Op::coll(CollKind::AllToAll, group.clone(), bytes, format!("moe{l}.dispatch")),
                        Op::coll(CollKind::AllToAll, group.clone(), bytes, format!("moe{l}.combine")),
                    ]
                })
                .collect();
            programs.insert(rank, ops);
        }
    }
    (groups, programs)
}

// ---------------------------------------------------------------------------
// Pipeline task-graph structure.
// ---------------------------------------------------------------------------

/// An explicit directed graph (edge list), so callers — and the property
/// suite — can express cyclic graphs that [`TaskGraph`] cannot represent.
#[derive(Debug, Clone, Serialize)]
pub struct DiGraph {
    pub n: usize,
    /// `(from, to)`: `from` must complete before `to`.
    pub edges: Vec<(usize, usize)>,
}

impl DiGraph {
    /// Extract the dependency graph of a [`TaskGraph`].
    pub fn from_task_graph(g: &TaskGraph) -> Self {
        let mut edges = Vec::new();
        for (id, t) in g.tasks().iter().enumerate() {
            for &d in &t.deps {
                edges.push((d, id));
            }
        }
        DiGraph { n: g.len(), edges }
    }
}

/// Find a dependency cycle, if any, returned as the node sequence of the
/// cycle. Iterative three-color DFS.
pub fn find_cycle(g: &DiGraph) -> Option<Vec<usize>> {
    let mut adj = vec![Vec::new(); g.n];
    for &(a, b) in &g.edges {
        if a < g.n && b < g.n {
            adj[a].push(b);
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; g.n];
    let mut parent = vec![usize::MAX; g.n];
    for start in 0..g.n {
        if color[start] != 0 {
            continue;
        }
        // (node, next child index)
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            if *ci < adj[u].len() {
                let v = adj[u][*ci];
                *ci += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    1 => {
                        // Found a back edge u -> v: reconstruct the cycle.
                        let mut cycle = vec![v];
                        let mut w = u;
                        while w != v && w != usize::MAX {
                            cycle.push(w);
                            w = parent[w];
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Structural verification of a pipeline schedule: build the task graph for
/// `schedule`, check it is acyclic, and check every inter-stage transfer is
/// a matched hop — each `Network(s)` task must consume exactly one
/// `Compute(s)` producer and feed at least one `Compute(s+1)` consumer.
pub fn check_pipeline(spec: &PipelineSpec, schedule: PipelineSchedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (graph, _) = spec.build(schedule);
    if let Some(cycle) = find_cycle(&DiGraph::from_task_graph(&graph)) {
        diags.push(Diagnostic::new(
            Pass::Collective,
            "pipeline-cycle",
            format!("{schedule:?}"),
            format!("task graph contains a dependency cycle through tasks {cycle:?}"),
        ));
        return diags;
    }
    let mut dependents = vec![Vec::new(); graph.len()];
    for (id, t) in graph.tasks().iter().enumerate() {
        for &d in &t.deps {
            dependents[d].push(id);
        }
    }
    for (id, t) in graph.tasks().iter().enumerate() {
        let Resource::Network(s) = t.resource else { continue };
        let producers: Vec<usize> = t
            .deps
            .iter()
            .copied()
            .filter(|&d| graph.task(d).resource == Resource::Compute(s))
            .collect();
        if producers.len() != 1 {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "unmatched-p2p",
                format!("task {id} (`{}`)", t.label),
                format!(
                    "inter-stage transfer on Network({s}) must have exactly one Compute({s}) producer, found {}",
                    producers.len()
                ),
            ));
        }
        let consumed = dependents[id]
            .iter()
            .any(|&d| graph.task(d).resource == Resource::Compute(s + 1));
        if !consumed {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "unmatched-p2p",
                format!("task {id} (`{}`)", t.label),
                format!("send on Network({s}) has no matching receive on Compute({})", s + 1),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PipelineSpec {
        PipelineSpec {
            stages: 4,
            prompt_microbatches: 4,
            gen_microbatches: 4,
            gen_tokens: 4,
            stage_prompt_time_full: 40e-3,
            stage_gen_time: 2e-3,
            microbatch_overhead: 0.1e-3,
            p2p_time: 0.05e-3,
        }
    }

    #[test]
    fn tp_programs_are_clean() {
        for (dp, pp, tp) in [(1, 1, 4), (2, 2, 4), (1, 5, 8)] {
            let m = Mapping3D::new(dp, pp, tp);
            let (groups, progs) = tp_allreduce_programs(&m, 3, 1024);
            let d = check_programs(&groups, &progs);
            assert!(d.is_empty(), "({dp},{pp},{tp}): {d:?}");
        }
    }

    #[test]
    fn tp_exec_programs_are_clean() {
        for world in [1usize, 2, 4, 8] {
            let (groups, progs) = tp_exec_allreduce_programs(world, 3, 4 * 256);
            let d = check_programs(&groups, &progs);
            assert!(d.is_empty(), "world {world}: {d:?}");
            // The expansion really is barrier-fenced: 1 step barrier plus
            // 5 ops per all-reduce, 2 all-reduces per layer.
            let want_len = if world > 1 { 1 + 3 * 2 * 5 } else { 1 };
            assert_eq!(progs[&0].len(), want_len);
        }
    }

    #[test]
    fn tp_exec_missing_barrier_detected() {
        // Rank 1 skips the `.reduced` barrier between reduce-scatter and
        // all-gather of layer 0's attention-output all-reduce: the lock-step
        // check flags the shorter program and the rendezvous simulation
        // reports the resulting stall.
        let (groups, mut progs) = tp_exec_allreduce_programs(4, 2, 512);
        let victim = progs.get_mut(&1).unwrap();
        let idx = victim
            .iter()
            .position(|op| matches!(op, Op::Coll { tag, .. } if tag == "layer0.attn_out.reduced"))
            .expect("barrier op present");
        victim.remove(idx);
        let d = check_programs(&groups, &progs);
        assert!(d.iter().any(|x| x.code == "collective-mismatch"), "{d:?}");
        assert!(d.iter().any(|x| x.code == "deadlock"), "{d:?}");
    }

    #[test]
    fn pp_programs_rendezvous() {
        let m = Mapping3D::new(2, 3, 2);
        let progs = pp_p2p_programs(&m, 4, 4096);
        let d = simulate_rendezvous(&progs);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ep_programs_are_clean() {
        let (groups, progs) = ep_alltoall_programs(16, 8, 2, 1 << 20);
        let d = check_programs(&groups, &progs);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn skipped_allreduce_detected() {
        let m = Mapping3D::new(1, 1, 4);
        let (groups, mut progs) = tp_allreduce_programs(&m, 2, 512);
        progs.get_mut(&2).unwrap().remove(1); // rank 2 skips layer0.ff2
        let d = check_programs(&groups, &progs);
        assert!(d.iter().any(|x| x.code == "collective-mismatch"), "{d:?}");
        assert!(d.iter().any(|x| x.code == "deadlock"), "{d:?}");
    }

    #[test]
    fn byte_count_mismatch_detected_with_provenance() {
        let m = Mapping3D::new(1, 1, 2);
        let (groups, mut progs) = tp_allreduce_programs(&m, 1, 512);
        if let Op::Coll { bytes, .. } = &mut progs.get_mut(&1).unwrap()[0] {
            *bytes = 256; // rank 1 shards the all-reduce differently
        }
        let d = check_programs(&groups, &progs);
        let hit = d.iter().find(|x| x.code == "collective-mismatch").expect("must flag");
        assert!(hit.message.contains("512") && hit.message.contains("256"), "{hit:?}");
        assert!(hit.message.contains("layer0.attn_out"), "{hit:?}");
    }

    #[test]
    fn send_send_deadlock_detected() {
        let mut progs = Programs::new();
        progs.insert(0, vec![Op::Send { to: 1, bytes: 8, tag: "a".into() }]);
        progs.insert(1, vec![Op::Send { to: 0, bytes: 8, tag: "b".into() }]);
        let d = simulate_rendezvous(&progs);
        assert!(d.iter().any(|x| x.code == "deadlock" && x.message.contains("rank 0")), "{d:?}");
    }

    #[test]
    fn crossed_collective_orders_deadlock() {
        // Rank 0: group A then group B; rank shared by both orders them the
        // other way round — the classic collective-order race.
        let ga = vec![0, 1];
        let gb = vec![1, 2];
        let mut progs = Programs::new();
        progs.insert(0, vec![Op::coll(CollKind::AllReduce, ga.clone(), 8, "a")]);
        progs.insert(
            1,
            vec![
                Op::coll(CollKind::AllReduce, gb.clone(), 8, "b"),
                Op::coll(CollKind::AllReduce, ga.clone(), 8, "a"),
            ],
        );
        progs.insert(2, vec![]);
        // Rank 2 never joins group B's all-reduce: rank 1 blocks forever,
        // and so transitively does rank 0.
        let d = simulate_rendezvous(&progs);
        assert!(d.iter().any(|x| x.code == "deadlock"), "{d:?}");
    }

    #[test]
    fn exit_before_collective_aborts_survivors_typed() {
        // Rank 1 dies mid-schedule: every survivor must reach a typed abort
        // (the timeout path), and *nobody* may be reported silently stuck.
        let (_, progs) = tp_exec_allreduce_programs(4, 2, 512);
        let len = progs[&0].len();
        for at in [0usize, 1, 7, len - 1] {
            let exits = ExitPlan::from([(1usize, at)]);
            let d = simulate_rendezvous_with_exits(&progs, &exits);
            assert!(
                d.iter().any(|x| x.code == "collective-abort"),
                "exit at {at}: {d:?}"
            );
            assert!(
                d.iter().all(|x| x.code != "deadlock"),
                "exit at {at} must abort typed, not deadlock: {d:?}"
            );
            assert!(check_exit_safety(&progs, &exits).is_empty());
        }
    }

    #[test]
    fn exit_after_program_end_is_harmless() {
        let (_, progs) = tp_exec_allreduce_programs(2, 1, 128);
        let exits = ExitPlan::from([(1usize, progs[&1].len())]);
        let d = simulate_rendezvous_with_exits(&progs, &exits);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn no_exits_matches_plain_rendezvous() {
        let (_, progs) = tp_exec_allreduce_programs(4, 2, 512);
        assert!(simulate_rendezvous_with_exits(&progs, &ExitPlan::new()).is_empty());
        assert!(simulate_rendezvous(&progs).is_empty());
    }

    #[test]
    fn dead_sender_times_out_the_recv() {
        let mut progs = Programs::new();
        progs.insert(0, vec![Op::Recv { from: 1, bytes: 8, tag: "act".into() }]);
        progs.insert(1, vec![Op::Send { to: 0, bytes: 8, tag: "act".into() }]);
        let exits = ExitPlan::from([(1usize, 0)]);
        let d = simulate_rendezvous_with_exits(&progs, &exits);
        assert!(d.iter().any(|x| x.code == "collective-abort" && x.message.contains("sender 1")), "{d:?}");
        assert!(d.iter().all(|x| x.code != "deadlock"), "{d:?}");
    }

    #[test]
    fn exits_do_not_mask_real_deadlocks() {
        // Ranks 0 and 1 deadlock among themselves (send/send); rank 2's
        // scripted exit elsewhere must not excuse it.
        let mut progs = Programs::new();
        progs.insert(0, vec![Op::Send { to: 1, bytes: 8, tag: "a".into() }]);
        progs.insert(1, vec![Op::Send { to: 0, bytes: 8, tag: "b".into() }]);
        progs.insert(2, vec![Op::Send { to: 3, bytes: 8, tag: "c".into() }]);
        progs.insert(3, vec![Op::Recv { from: 2, bytes: 8, tag: "c".into() }]);
        let exits = ExitPlan::from([(2usize, 0)]);
        let d = check_exit_safety(&progs, &exits);
        assert!(d.iter().any(|x| x.code == "deadlock" && x.message.contains("rank 0")), "{d:?}");
    }

    #[test]
    fn pipeline_graphs_are_structurally_sound() {
        for sched in [PipelineSchedule::TrainingStyle, PipelineSchedule::InferenceQueue] {
            let d = check_pipeline(&spec(), sched);
            assert!(d.is_empty(), "{sched:?}: {d:?}");
        }
    }

    #[test]
    fn cycle_detection_on_explicit_graph() {
        let g = DiGraph { n: 3, edges: vec![(0, 1), (1, 2), (2, 0)] };
        let c = find_cycle(&g).expect("cycle");
        assert_eq!(c.len(), 3);
        let g = DiGraph { n: 3, edges: vec![(0, 1), (1, 2), (0, 2)] };
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = DiGraph { n: 1, edges: vec![(0, 0)] };
        assert!(find_cycle(&g).is_some());
    }
}
