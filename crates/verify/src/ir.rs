//! Pass 1 — IR verifier: static shape/dtype inference over op lists.
//!
//! [`dsi_kernels::graph::OpDesc`] op lists carry enough shape information to
//! run full inference without executing anything: a GEMM declares `[m, k] ×
//! [k, n]`, a reduction `[rows, cols]`, an attention op its
//! `(batch, heads, t_new, t_ctx, head_dim)` geometry. Walking the list and
//! chaining each op's output shape into the next op's expected input shape
//! statically rejects exactly the plans whose dynamic execution would trip a
//! size assert — but for *every* configuration, not the one a test runs.
//!
//! Three defect classes:
//! * `inner-dim-mismatch` / `shape-mismatch` / `elem-count-mismatch` — the
//!   dataflow chain is inconsistent (e.g. a GEMM whose `k` does not match
//!   the incoming activation width);
//! * `dtype-mix` — a fused region mixes weight precisions: one fused launch
//!   has one weight-streaming pipeline, so INT8 and FP16 GEMMs cannot share
//!   a region (they may neighbour across a region boundary);
//! * fusion legality re-checked through [`dsi_kernels::fusion::validate`]
//!   (`bad-partition` / `no-shared-axis`), so one verifier call subsumes the
//!   `FusionPlan` rules and the shape rules.

use crate::{Diagnostic, Pass};
use dsi_kernels::fusion::{validate as validate_fusion, FusionError, FusionPlan};
use dsi_kernels::graph::{OpDesc, OpKind};
use dsi_sim::hw::DType;
use serde::Serialize;

/// The activation tensor flowing between ops, as a logical 2-D shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Shape {
    pub rows: usize,
    pub cols: usize,
}

impl Shape {
    pub fn new(rows: usize, cols: usize) -> Self {
        Shape { rows, cols }
    }

    pub fn elems(&self) -> usize {
        self.rows * self.cols
    }
}

/// What an op requires of its incoming activation.
enum Expect {
    /// Exact 2-D shape (GEMM lhs, reduction input).
    Exact(Shape),
    /// Element count only (element-wise, layout transforms, attention QKV).
    Elems(usize),
}

/// Expected input and produced output of one op. Layout transforms and
/// element-wise ops preserve the incoming shape.
fn op_io(op: &OpDesc, incoming: Shape) -> (Expect, Shape) {
    match op.kind {
        OpKind::Gemm { m, k, n, .. } => (Expect::Exact(Shape::new(m, k)), Shape::new(m, n)),
        OpKind::Elementwise { elems, .. } => (Expect::Elems(elems), incoming),
        OpKind::Reduction { rows, cols } => {
            (Expect::Exact(Shape::new(rows, cols)), Shape::new(rows, cols))
        }
        OpKind::DataLayout { elems } => (Expect::Elems(elems), incoming),
        OpKind::Attention {
            batch,
            heads,
            t_new,
            t_ctx: _,
            head_dim,
        } => (
            // Input is the transposed QKV block: 3 tensors of
            // [batch*t_new, heads*head_dim].
            Expect::Elems(batch * t_new * 3 * heads * head_dim),
            Shape::new(batch * t_new, heads * head_dim),
        ),
    }
}

/// Derive the layer-input shape the first op expects (used when the caller
/// does not pin one).
pub fn infer_input_shape(ops: &[OpDesc]) -> Option<Shape> {
    let first = ops.first()?;
    match op_io(first, Shape::new(1, 1)).0 {
        Expect::Exact(s) => Some(s),
        Expect::Elems(e) => Some(Shape::new(1, e)),
    }
}

/// Verify the dataflow chain of an op list: every op's expected input must
/// match the previous op's output. Returns **all** violations, with op-name
/// provenance. After a mismatch the walk resynchronizes on the offending
/// op's declared shape so downstream defects are still reported.
pub fn verify_ops(ops: &[OpDesc], input: Option<Shape>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(mut cur) = input.or_else(|| infer_input_shape(ops)) else {
        return diags;
    };
    for (i, op) in ops.iter().enumerate() {
        let expect = op_io(op, cur).0;
        match expect {
            Expect::Exact(want) => {
                if want != cur {
                    let code = if want.rows == cur.rows && want.cols != cur.cols {
                        // The GEMM/reduction row count lines up but the
                        // contraction width does not: the classic inner-dim
                        // break.
                        "inner-dim-mismatch"
                    } else {
                        "shape-mismatch"
                    };
                    diags.push(Diagnostic::new(
                        Pass::Ir,
                        code,
                        format!("op {i} (`{}`)", op.name),
                        format!(
                            "expects input [{}, {}] but receives [{}, {}]",
                            want.rows, want.cols, cur.rows, cur.cols
                        ),
                    ));
                    // Resynchronize on the op's own declared input.
                    cur = want;
                }
            }
            Expect::Elems(want) => {
                if want != cur.elems() {
                    diags.push(Diagnostic::new(
                        Pass::Ir,
                        "elem-count-mismatch",
                        format!("op {i} (`{}`)", op.name),
                        format!(
                            "expects {want} elements but receives [{}, {}] = {}",
                            cur.rows,
                            cur.cols,
                            cur.elems()
                        ),
                    ));
                }
            }
        }
        // Recompute the output against the (possibly resynchronized) input.
        cur = op_io(op, cur).1;
    }
    diags
}

/// Weight dtypes of the GEMMs inside one region, with op names.
fn region_weight_dtypes(region: &[OpDesc]) -> Vec<(&'static str, DType)> {
    region
        .iter()
        .filter_map(|op| match op.kind {
            OpKind::Gemm { weight_dtype, .. } => Some((op.name, weight_dtype)),
            _ => None,
        })
        .collect()
}

/// Check that no fused region mixes weight precisions: one fused launch has
/// one weight-streaming pipeline (Sec. III-C ties the GEMM schedule to the
/// weight dtype), so INT8 and FP16 GEMMs may only meet at region boundaries.
pub fn verify_region_dtypes(ops: &[OpDesc], plan: &FusionPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &(lo, hi) in &plan.regions {
        if lo >= hi || hi > ops.len() {
            continue; // partition defects are reported by the fusion check
        }
        let gemms = region_weight_dtypes(&ops[lo..hi]);
        if let Some(&(first_name, first_dt)) = gemms.first() {
            for &(name, dt) in &gemms[1..] {
                if dt != first_dt {
                    diags.push(Diagnostic::new(
                        Pass::Ir,
                        "dtype-mix",
                        format!("region ({lo}, {hi})"),
                        format!(
                            "`{first_name}` streams {first_dt:?} weights but `{name}` streams \
                             {dt:?} in the same fused region; split the region at the precision \
                             boundary"
                        ),
                    ));
                }
            }
        }
    }
    diags
}

/// Full IR verification of one layer plan: dataflow chain, fusion legality
/// (partition + shared-tileable-axis), and region dtype purity. Returns all
/// violations; an empty vector proves the plan legal.
pub fn verify_layer_plan(ops: &[OpDesc], plan: &FusionPlan, input: Option<Shape>) -> Vec<Diagnostic> {
    let mut diags = verify_ops(ops, input);
    for err in validate_fusion(ops, plan) {
        let code = match err {
            FusionError::BadPartition => "bad-partition",
            FusionError::NoSharedAxis { .. } => "no-shared-axis",
        };
        diags.push(Diagnostic::new(Pass::Ir, code, "fusion plan", err.to_string()));
    }
    diags.extend(verify_region_dtypes(ops, plan));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_kernels::graph::{transformer_layer_ops, transformer_layer_ops_tp, Axis};

    fn ops() -> Vec<OpDesc> {
        transformer_layer_ops(2, 4, 4, 64, 4, DType::Fp16)
    }

    #[test]
    fn canonical_layer_is_clean() {
        for plan in [
            FusionPlan::unfused(12),
            FusionPlan::deepspeed_small_batch(),
            FusionPlan::deepspeed_large_batch(),
            FusionPlan::faster_transformer(),
        ] {
            let d = verify_layer_plan(&ops(), &plan, None);
            assert!(d.is_empty(), "{d:?}");
        }
    }

    #[test]
    fn tp_layer_is_clean_for_all_divisors() {
        for tp in [1, 2, 4] {
            let ops = transformer_layer_ops_tp(2, 1, 16, 64, 4, tp, DType::Fp16);
            let d = verify_layer_plan(&ops, &FusionPlan::deepspeed_small_batch(), None);
            assert!(d.is_empty(), "tp={tp}: {d:?}");
        }
    }

    #[test]
    fn inner_dim_mismatch_detected_with_op_name() {
        let mut ops = ops();
        // Corrupt the FF2 contraction width (as a bad TP shard would).
        if let OpKind::Gemm { k, .. } = &mut ops[10].kind {
            *k += 8;
        }
        let d = verify_ops(&ops, None);
        assert!(
            d.iter().any(|x| x.code == "inner-dim-mismatch" && x.site.contains("ff2_gemm")),
            "{d:?}"
        );
    }

    #[test]
    fn elem_count_mismatch_detected() {
        let mut ops = ops();
        if let OpKind::Elementwise { elems, .. } = &mut ops[2].kind {
            *elems /= 2; // qkv_bias covers only half the projection
        }
        let d = verify_ops(&ops, None);
        assert!(d.iter().any(|x| x.code == "elem-count-mismatch" && x.site.contains("qkv_bias")), "{d:?}");
    }

    #[test]
    fn all_violations_reported_not_just_first() {
        let mut ops = ops();
        if let OpKind::Gemm { k, .. } = &mut ops[1].kind {
            *k += 1;
        }
        if let OpKind::Gemm { k, .. } = &mut ops[10].kind {
            *k += 1;
        }
        let d = verify_ops(&ops, None);
        assert!(d.len() >= 2, "{d:?}");
    }

    #[test]
    fn dtype_mix_inside_region_detected() {
        let mut ops = ops();
        // ff1 in INT8 while ff2 stays FP16 is fine across a boundary...
        if let OpKind::Gemm { weight_dtype, .. } = &mut ops[8].kind {
            *weight_dtype = DType::Int8;
        }
        let boundary = verify_region_dtypes(&ops, &FusionPlan::deepspeed_small_batch());
        assert!(boundary.is_empty(), "{boundary:?}");
        // ...but a region containing both qkv (FP16) and another INT8 GEMM
        // must be rejected. Build a region spanning ops 0..12.
        let one_region = FusionPlan { regions: vec![(0, 12)] };
        let d = verify_region_dtypes(&ops, &one_region);
        assert!(d.iter().any(|x| x.code == "dtype-mix"), "{d:?}");
    }

    #[test]
    fn fusion_violations_surface_through_ir_pass() {
        let ops = ops();
        let bad = FusionPlan {
            regions: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 6), (6, 12)],
        };
        let d = verify_layer_plan(&ops, &bad, None);
        assert!(
            d.iter().any(|x| x.code == "no-shared-axis" && x.message.contains("attention")),
            "{d:?}"
        );
    }

    #[test]
    fn attention_geometry_break_detected() {
        // Halving attention heads (a bad TP shard that forgot to shrink the
        // surrounding GEMMs) breaks the element-count chain.
        let mut ops = ops();
        if let OpKind::Attention { heads, .. } = &mut ops[4].kind {
            *heads /= 2;
        }
        let d = verify_ops(&ops, None);
        assert!(d.iter().any(|x| x.site.contains("attention") || x.site.contains("attn_out_gemm")), "{d:?}");
    }

    #[test]
    fn custom_op_list_with_any_axis_is_checked() {
        // A minimal two-op chain with a deliberate break.
        let a = OpDesc {
            name: "gemm_a",
            kind: OpKind::Gemm { m: 2, k: 8, n: 16, weight_dtype: DType::Fp16 },
            tile_axes: &[Axis::Token],
            micro_launches: 1,
        };
        let b = OpDesc {
            name: "gemm_b",
            kind: OpKind::Gemm { m: 2, k: 12, n: 4, weight_dtype: DType::Fp16 },
            tile_axes: &[Axis::Token],
            micro_launches: 1,
        };
        let d = verify_ops(&[a, b], None);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "inner-dim-mismatch");
    }
}
