//! # dsi-verify — static analysis over inference plans
//!
//! The performance argument of the paper rests on plans being *legal*:
//! Deep-Fusion's tile-dependency rule (Sec. III-B), tensor-parallel sharding
//! that keeps every rank's collective sequence in lock-step (Sec. IV-A), and
//! pipeline schedules that never deadlock (Sec. IV-B). The rest of the
//! workspace checks those invariants dynamically — at execution time, on the
//! one configuration a test happens to run. This crate proves them
//! *statically*, over every plan, without executing anything:
//!
//! * [`ir`] — shape/dtype inference over [`dsi_kernels::graph::OpDesc`] op
//!   lists: inner-dimension mismatches, element-count breaks, weight-dtype
//!   mixing inside a fused region, and fusion plans violating the
//!   shared-tileable-axis rule all become diagnostics before any kernel runs.
//! * [`scratch`] — buffer aliasing / lifetime analysis of the
//!   `FastSession` scratch arena (`dsi-model::fast`): overlapping
//!   scratch-slice reuse is a verifier error, not a silent wrong answer.
//! * [`collective`] — collective-order race detector: given a TP/PP/EP
//!   mapping, check that every rank of each communication group issues the
//!   same collective sequence with matching byte counts, that send/recv
//!   pairs rendezvous, and that pipeline task graphs are acyclic.
//! * [`locks`] — lock-order / condvar-discipline audit of the serving
//!   runtime's thread model (`dsi-serve`): the held-while-acquiring graph
//!   must be acyclic and every condvar wait must hold exactly its mutex.
//!   Also hosts [`locks::check_sched_trace`], which diffs the continuous
//!   scheduler's *live* debug-build trace against the hand-written model.
//! * [`runtime`] — runtime state machines as checked models: the circuit
//!   breaker (exhaustive bounded exploration) and the scheduler's
//!   fault-recovery page protocol (release-before-replay).
//! * [`audit`] — unsafe-kernel audit: every `unsafe` block must carry a
//!   `// SAFETY:` comment and every `unsafe fn` a `# Safety` doc section.
//! * [`sweep`] — the `cargo xtask verify` entry point: runs the passes over
//!   every zoo model × figure configuration used by the paper-reproduction
//!   binaries, plus negative controls proving the detectors still detect.
//!
//! Every pass returns a list of [`Diagnostic`]s; an empty list means the
//! plan is proven legal under that pass's model.

use serde::Serialize;
use std::fmt;

pub mod audit;
pub mod collective;
pub mod ir;
pub mod locks;
pub mod runtime;
pub mod scratch;
pub mod sweep;

/// Which analysis produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Pass {
    /// Shape/dtype/fusion-legality inference over op lists.
    Ir,
    /// Scratch-arena aliasing and lifetime analysis.
    Scratch,
    /// Collective-order / pipeline race detection.
    Collective,
    /// Unsafe-block source audit.
    Audit,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Ir => write!(f, "ir"),
            Pass::Scratch => write!(f, "scratch"),
            Pass::Collective => write!(f, "collective"),
            Pass::Audit => write!(f, "audit"),
        }
    }
}

/// One structured verifier finding. `code` is a stable machine-readable
/// defect class (tests and CI gate on it); `site` carries provenance — the
/// op name, rank, file:line, or plan region the defect was found at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    pub pass: Pass,
    pub code: &'static str,
    pub site: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(pass: Pass, code: &'static str, site: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            pass,
            code,
            site: site.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}] {}: {}", self.pass, self.code, self.site, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_carries_provenance() {
        let d = Diagnostic::new(Pass::Ir, "inner-dim-mismatch", "qkv_gemm", "k=64 vs cols=32");
        let s = d.to_string();
        assert!(s.contains("ir"), "{s}");
        assert!(s.contains("inner-dim-mismatch"), "{s}");
        assert!(s.contains("qkv_gemm"), "{s}");
    }
}
