//! Lock-order and condvar-discipline audit for the serving runtime.
//!
//! The serving layer (`dsi-serve`) is the first part of the repo where
//! multiple *control* threads — submitters, the worker, the watchdog, the
//! draining caller — contend on shared mutable state, so the classic
//! deadlock shapes (AB/BA lock inversion, waiting on a condvar while
//! holding an unrelated lock) become possible. This pass checks the same
//! property the collective verifier checks for rank programs, one level
//! up: model each thread's synchronization behaviour as a straight-line
//! program of [`LockOp`]s and verify
//!
//! 1. **acyclic lock order** — the "held-while-acquiring" relation over
//!    all threads must have no cycle (reusing [`find_cycle`] from the
//!    pipeline race detector on a lock-indexed [`DiGraph`]);
//! 2. **balanced acquire/release** — no double-acquire, no release of a
//!    lock not held, no locks held at thread exit;
//! 3. **condvar discipline** — a [`LockOp::Wait`] must be executed while
//!    holding *exactly* the condvar's mutex: waiting with extra locks held
//!    starves every thread that needs them, and waiting without the mutex
//!    is UB-by-contract for `std::sync::Condvar`.
//!
//! [`serve_runtime_model`] encodes `dsi-serve`'s actual design — one state
//! mutex, two condvars tied to it — and [`check_lock_order`] over it is a
//! regression gate: any future change that adds a second lock with an
//! inconsistent order shows up as a `lock-cycle` diagnostic in the sweep.

use std::collections::BTreeSet;

use crate::collective::{find_cycle, DiGraph};
use crate::{Diagnostic, Pass};

/// One synchronization action of a modeled thread. Locks are small integer
/// ids; condvars are identified by the mutex they are tied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOp {
    /// Block until lock `id` is held.
    Acquire(usize),
    /// Release lock `id`.
    Release(usize),
    /// Wait on a condvar tied to mutex `mutex` (atomically releases and
    /// re-acquires it; legal only while holding exactly that mutex).
    Wait { mutex: usize },
}

/// A thread's synchronization behaviour: a name (for diagnostics) and the
/// sequence of lock operations it can perform.
#[derive(Debug, Clone)]
pub struct ThreadModel {
    pub name: &'static str,
    pub ops: Vec<LockOp>,
}

impl ThreadModel {
    pub fn new(name: &'static str, ops: Vec<LockOp>) -> Self {
        ThreadModel { name, ops }
    }
}

/// Verify the lock discipline of `threads` over `n_locks` locks. Returns
/// one diagnostic per violation; an empty vector means the model is
/// deadlock-free by lock ordering.
pub fn check_lock_order(n_locks: usize, threads: &[ThreadModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Held-while-acquiring edges h -> a, with one witness thread per edge.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut witnesses: Vec<&'static str> = Vec::new();

    for t in threads {
        let mut held: BTreeSet<usize> = BTreeSet::new();
        for (i, op) in t.ops.iter().enumerate() {
            let site = |what: &str| format!("thread {} op {i} ({what})", t.name);
            match *op {
                LockOp::Acquire(id) => {
                    if id >= n_locks {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "unknown-lock",
                            site("acquire"),
                            format!("lock {id} out of range (n_locks = {n_locks})"),
                        ));
                        continue;
                    }
                    if held.contains(&id) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "double-acquire",
                            site("acquire"),
                            format!("lock {id} acquired while already held (std::sync::Mutex is not reentrant)"),
                        ));
                        continue;
                    }
                    for &h in &held {
                        if !edges.contains(&(h, id)) {
                            edges.push((h, id));
                            witnesses.push(t.name);
                        }
                    }
                    held.insert(id);
                }
                LockOp::Release(id) => {
                    if !held.remove(&id) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "release-unheld",
                            site("release"),
                            format!("lock {id} released but not held"),
                        ));
                    }
                }
                LockOp::Wait { mutex } => {
                    if !held.contains(&mutex) {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "wait-without-mutex",
                            site("wait"),
                            format!("condvar wait on mutex {mutex} without holding it"),
                        ));
                    } else if held.len() > 1 {
                        let extra: Vec<usize> =
                            held.iter().copied().filter(|&h| h != mutex).collect();
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "wait-holding-lock",
                            site("wait"),
                            format!(
                                "condvar wait on mutex {mutex} while also holding {extra:?}: \
                                 the extra locks stay held across the sleep and starve their waiters"
                            ),
                        ));
                    }
                    // The wait itself releases and re-acquires `mutex`; the
                    // held set is unchanged at this abstraction level.
                }
            }
        }
        if !held.is_empty() {
            let leaked: Vec<usize> = held.into_iter().collect();
            diags.push(Diagnostic::new(
                Pass::Collective,
                "lock-leak",
                format!("thread {} exit", t.name),
                format!("locks {leaked:?} still held at end of program"),
            ));
        }
    }

    let g = DiGraph { n: n_locks, edges: edges.clone() };
    if let Some(cycle) = find_cycle(&g) {
        let involved: Vec<&str> = edges
            .iter()
            .zip(&witnesses)
            .filter(|((a, b), _)| cycle.contains(a) && cycle.contains(b))
            .map(|(_, w)| *w)
            .collect();
        diags.push(Diagnostic::new(
            Pass::Collective,
            "lock-cycle",
            "lock-order graph",
            format!(
                "held-while-acquiring cycle through locks {cycle:?} (threads {involved:?}): \
                 a schedule interleaving them deadlocks"
            ),
        ));
    }
    diags
}

/// Lock ids of the serve runtime model. One mutex guards all serving state
/// (queue, counters, breaker, running-job handle); the two condvars (`work`
/// and `idle`) are both tied to it, so the runtime's lock graph has a
/// single node and no edges at all.
pub const SERVE_STATE: usize = 0;

/// `dsi-serve`'s synchronization design, transcribed thread by thread:
/// submitters take the state mutex once per admission; the worker holds it
/// only to pop/account (never across a decode); the watchdog holds it only
/// to inspect and cancel; drain holds it across a condvar wait on `idle`.
/// Any future edit that adds a second lock ordered inconsistently against
/// the state mutex turns this from a clean model into a `lock-cycle`
/// diagnostic in [`crate::sweep::verify_all`].
pub fn serve_runtime_model() -> (usize, Vec<ThreadModel>) {
    use LockOp::*;
    let threads = vec![
        // submit(): one critical section — admission checks + enqueue.
        ThreadModel::new(
            "submitter",
            vec![Acquire(SERVE_STATE), Release(SERVE_STATE)],
        ),
        // worker: wait for work, pop, run *unlocked*, re-lock to account.
        ThreadModel::new(
            "worker",
            vec![
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // work condvar
                Release(SERVE_STATE),
                // decode runs with no serve lock held
                Acquire(SERVE_STATE),
                Release(SERVE_STATE),
            ],
        ),
        // watchdog: periodic inspect-and-cancel under the state lock.
        ThreadModel::new(
            "watchdog",
            vec![
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // idle condvar (timed)
                Release(SERVE_STATE),
            ],
        ),
        // drain: flag under the lock, then wait for the worker on `idle`.
        ThreadModel::new(
            "drain",
            vec![
                Acquire(SERVE_STATE),
                Release(SERVE_STATE),
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // idle condvar (timed)
                Release(SERVE_STATE),
            ],
        ),
    ];
    (1, threads)
}

/// The continuous-batching scheduler's synchronization design
/// (`dsi-serve::scheduler::continuous_worker_loop`), transcribed phase by
/// phase: **admit** under the state mutex (waiting on the `work` condvar
/// when no request is queued and no sequence is resident), **execute** —
/// prefills plus one batched decode step — with *no* lock held, and
/// **retire** under the mutex again (outcome channels are sent to only
/// after it is dropped). The same single-mutex/two-condvar discipline as
/// the single-flight worker, so the lock graph stays a single node; any
/// second lock introduced by a future scheduler change shows up here as a
/// `lock-cycle` or `wait-holding-lock` diagnostic.
pub fn continuous_scheduler_model() -> (usize, Vec<ThreadModel>) {
    use LockOp::*;
    let threads = vec![
        // submit(): page-granular admission check + enqueue, one section.
        ThreadModel::new(
            "submitter",
            vec![Acquire(SERVE_STATE), Release(SERVE_STATE)],
        ),
        // scheduler: admit (wait on `work` when idle) / execute unlocked /
        // retire and mirror pool stats under the lock.
        ThreadModel::new(
            "scheduler",
            vec![
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // work condvar
                Release(SERVE_STATE),
                // prefill + batched decode + shed-retry run with no lock
                Acquire(SERVE_STATE),
                Release(SERVE_STATE),
                // outcome delivery happens here, after the unlock
            ],
        ),
        // watchdog: heartbeat inspection + cancel-all under the lock.
        ThreadModel::new(
            "watchdog",
            vec![
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // idle condvar (timed)
                Release(SERVE_STATE),
            ],
        ),
        // drain: set the flag, then wait for quiescence on `idle`.
        ThreadModel::new(
            "drain",
            vec![
                Acquire(SERVE_STATE),
                Release(SERVE_STATE),
                Acquire(SERVE_STATE),
                Wait { mutex: SERVE_STATE }, // idle condvar (timed)
                Release(SERVE_STATE),
            ],
        ),
    ];
    (1, threads)
}

/// One event recorded by the continuous scheduler's debug-build tracer.
/// `Acquire`/`Wait`/`Release` are the *actual* state-mutex operations of
/// the live scheduler thread; `Admit`/`Execute`/`Recover`/`Retire` mark
/// which phase the surrounding work belongs to. [`check_sched_trace`]
/// diffs a recorded trace against the scheduler thread of
/// [`continuous_scheduler_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SchedTraceOp {
    /// Top of the scheduler loop (also opens the final report section).
    IterStart,
    /// State mutex locked.
    Acquire,
    /// Condvar wait on the state mutex (park for work).
    Wait,
    /// State mutex unlocked.
    Release,
    /// Queue → slot admission work (must hold the lock).
    Admit,
    /// Prefill/decode engine work (must NOT hold the lock).
    Execute,
    /// Fault recovery — release + prefix replay (must NOT hold the lock).
    Recover,
    /// Outcome accounting (must hold the lock; delivery happens after
    /// release, which is why `Retire` sits inside the second section).
    Retire,
}

/// Diff a live scheduler trace against the verified model: every iteration
/// must be a run of [`continuous_scheduler_model`]'s scheduler thread —
/// `Acquire, Wait*, Release, Acquire, Release`, truncatable at the
/// lock-free points (the idle `continue` and the drain `break` end an
/// iteration after the first release) — with each phase marker inside the
/// right section: admission in the first critical section, engine
/// execution and recovery strictly between the two, retirement in the
/// second. The projected lock ops are then re-checked with the same
/// [`check_lock_order`] that validates the hand-written model, so the live
/// path and the model cannot drift apart silently.
pub fn check_sched_trace(trace: &[SchedTraceOp]) -> Vec<Diagnostic> {
    use SchedTraceOp as T;
    let mut diags = Vec::new();
    if trace.is_empty() {
        diags.push(Diagnostic::new(
            Pass::Collective,
            "sched-trace-empty",
            "scheduler trace",
            "tracing enabled but no iteration was recorded",
        ));
        return diags;
    }
    if trace[0] != T::IterStart {
        diags.push(Diagnostic::new(
            Pass::Collective,
            "sched-trace-start",
            "scheduler trace op 0",
            format!("trace must open with IterStart, found {:?}", trace[0]),
        ));
    }

    // Split into iterations at IterStart markers.
    let mut starts: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter_map(|(i, op)| (*op == T::IterStart).then_some(i))
        .collect();
    starts.push(trace.len());

    let mut projection: Vec<LockOp> = Vec::new();
    for (it, w) in starts.windows(2).enumerate() {
        let iter = &trace[w[0] + 1..w[1]];
        let site = |i: usize, op: T| format!("scheduler iteration {it} op {i} ({op:?})");
        // Section machine derived from the model's scheduler ops
        // [Acquire, Wait*, Release, Acquire, Release]:
        // 0 = before first acquire, 1 = admission section, 2 = unlocked
        // execute window, 3 = retire section, 4 = done.
        let mut sec = 0usize;
        for (i, &op) in iter.iter().enumerate() {
            match op {
                T::Acquire => {
                    projection.push(LockOp::Acquire(SERVE_STATE));
                    match sec {
                        0 => sec = 1,
                        2 => sec = 3,
                        _ => diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-model-diff",
                            site(i, op),
                            format!("acquire in section {sec}: not a run of the scheduler model"),
                        )),
                    }
                }
                T::Release => {
                    projection.push(LockOp::Release(SERVE_STATE));
                    match sec {
                        1 => sec = 2,
                        3 => sec = 4,
                        _ => diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-model-diff",
                            site(i, op),
                            format!("release in section {sec}: not a run of the scheduler model"),
                        )),
                    }
                }
                T::Wait => {
                    projection.push(LockOp::Wait { mutex: SERVE_STATE });
                    if sec != 1 {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-model-diff",
                            site(i, op),
                            "condvar wait outside the admission critical section".to_string(),
                        ));
                    }
                }
                T::Admit => {
                    if sec != 1 {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-phase-order",
                            site(i, op),
                            "admission work outside the first critical section".to_string(),
                        ));
                    }
                }
                T::Execute | T::Recover => {
                    if sec != 2 {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-phase-order",
                            site(i, op),
                            "engine work while holding the state lock (or out of order)".to_string(),
                        ));
                    }
                }
                T::Retire => {
                    if sec != 3 {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "sched-phase-order",
                            site(i, op),
                            "retirement accounting outside the second critical section".to_string(),
                        ));
                    }
                }
                T::IterStart => unreachable!("IterStart is an iteration boundary"),
            }
        }
        // An iteration may stop early only at a lock-free point (idle
        // `continue`, drain `break`, report section): sections 2 and 4.
        if sec == 1 || sec == 3 {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "sched-model-diff",
                format!("scheduler iteration {it} end"),
                "iteration ended while still holding the state lock".to_string(),
            ));
        } else if sec == 0 {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "sched-model-diff",
                format!("scheduler iteration {it}"),
                "iteration performed no lock operation at all".to_string(),
            ));
        }
    }

    // The projected lock trace must also satisfy the generic discipline
    // checker the hand-written models are held to.
    diags.extend(check_lock_order(1, &[ThreadModel::new("live-scheduler", projection)]));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_model_is_clean() {
        let (n, threads) = serve_runtime_model();
        let diags = check_lock_order(n, &threads);
        assert!(diags.is_empty(), "serve lock model: {diags:#?}");
    }

    #[test]
    fn continuous_scheduler_model_is_clean() {
        let (n, threads) = continuous_scheduler_model();
        let diags = check_lock_order(n, &threads);
        assert!(diags.is_empty(), "scheduler lock model: {diags:#?}");
    }

    #[test]
    fn ab_ba_inversion_is_a_cycle() {
        use LockOp::*;
        let threads = vec![
            ThreadModel::new("t1", vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
            ThreadModel::new("t2", vec![Acquire(1), Acquire(0), Release(0), Release(1)]),
        ];
        let diags = check_lock_order(2, &threads);
        assert!(diags.iter().any(|d| d.code == "lock-cycle"), "{diags:#?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        use LockOp::*;
        let threads = vec![
            ThreadModel::new("t1", vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
            ThreadModel::new("t2", vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
        ];
        assert!(check_lock_order(2, &threads).is_empty());
    }

    #[test]
    fn wait_while_holding_second_lock_is_flagged() {
        use LockOp::*;
        let threads = vec![ThreadModel::new(
            "t",
            vec![
                Acquire(0),
                Acquire(1),
                Wait { mutex: 1 },
                Release(1),
                Release(0),
            ],
        )];
        let diags = check_lock_order(2, &threads);
        assert!(diags.iter().any(|d| d.code == "wait-holding-lock"), "{diags:#?}");
    }

    #[test]
    fn wait_without_mutex_is_flagged() {
        use LockOp::*;
        let threads =
            vec![ThreadModel::new("t", vec![Wait { mutex: 0 }])];
        let diags = check_lock_order(1, &threads);
        assert!(diags.iter().any(|d| d.code == "wait-without-mutex"), "{diags:#?}");
    }

    #[test]
    fn unbalanced_programs_are_flagged() {
        use LockOp::*;
        let threads = vec![
            ThreadModel::new("leaker", vec![Acquire(0)]),
            ThreadModel::new("double", vec![Acquire(0), Acquire(0)]),
            ThreadModel::new("stray", vec![Release(0)]),
        ];
        let diags = check_lock_order(1, &threads);
        for code in ["lock-leak", "double-acquire", "release-unheld"] {
            assert!(diags.iter().any(|d| d.code == code), "missing {code}: {diags:#?}");
        }
    }

    #[test]
    fn sched_trace_of_the_live_shapes_is_clean() {
        use SchedTraceOp::*;
        // Idle park, full work iteration (with recovery), drain break,
        // report section — the four shapes the live scheduler records.
        let trace = vec![
            IterStart, Acquire, Wait, Release,
            IterStart, Acquire, Admit, Release, Execute, Recover, Execute, Acquire, Retire, Release,
            IterStart, Acquire, Release,
            IterStart, Acquire, Release,
        ];
        let diags = check_sched_trace(&trace);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn sched_trace_retire_under_admission_lock_is_flagged() {
        use SchedTraceOp::*;
        let trace = vec![IterStart, Acquire, Admit, Retire, Release, Execute, Acquire, Release];
        let diags = check_sched_trace(&trace);
        assert!(diags.iter().any(|d| d.code == "sched-phase-order"), "{diags:#?}");
    }

    #[test]
    fn sched_trace_execute_while_locked_is_flagged() {
        use SchedTraceOp::*;
        let trace = vec![IterStart, Acquire, Admit, Execute, Release];
        let diags = check_sched_trace(&trace);
        assert!(diags.iter().any(|d| d.code == "sched-phase-order"), "{diags:#?}");
    }

    #[test]
    fn sched_trace_lock_leak_is_flagged() {
        use SchedTraceOp::*;
        let trace = vec![IterStart, Acquire, Admit, Release, Execute, Acquire, Retire];
        let diags = check_sched_trace(&trace);
        assert!(
            diags.iter().any(|d| d.code == "sched-model-diff"),
            "iteration ending locked must diff from the model: {diags:#?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "lock-leak"),
            "the projected trace must also fail the generic checker: {diags:#?}"
        );
    }

    #[test]
    fn sched_trace_third_critical_section_is_flagged() {
        use SchedTraceOp::*;
        // A third lock section per iteration is not a run of the model.
        let trace = vec![
            IterStart, Acquire, Release, Execute, Acquire, Retire, Release, Acquire, Release,
        ];
        let diags = check_sched_trace(&trace);
        assert!(diags.iter().any(|d| d.code == "sched-model-diff"), "{diags:#?}");
    }

    #[test]
    fn empty_sched_trace_is_flagged() {
        let diags = check_sched_trace(&[]);
        assert!(diags.iter().any(|d| d.code == "sched-trace-empty"), "{diags:#?}");
    }
}
