//! Runtime state-machine verification: the serving circuit breaker and the
//! scheduler's fault-recovery protocol, checked as models.
//!
//! The continuous scheduler's recovery path (release the poisoned
//! residents' pages, re-reserve, re-prefill the committed prefix) and the
//! per-fault-class breakers both encode small state machines whose bugs are
//! catastrophic but whose state spaces are tiny. This module transcribes
//! them:
//!
//! * [`BreakerModel`] — the `dsi-serve` circuit breaker
//!   (`Closed → Open → HalfOpen`) as a pure state machine with no serve
//!   dependency. [`check_breaker_model`] *exhaustively* explores every
//!   event sequence up to a bounded depth and checks the safety invariants
//!   (rejects only while open or probing, at most one probe in flight,
//!   `opens` counts exactly the transitions into `Open`, a closed breaker
//!   never holds `threshold` failures). The serve crate's unit tests drive
//!   the real `Breaker` and this model in lock-step, so the transcription
//!   cannot drift.
//! * [`RecoveryOp`] / [`check_recovery_program`] — the replay protocol as a
//!   checkable program over per-slot page states. The deadly bug shape is
//!   re-seating a sequence while its possibly-poisoned pages are still
//!   reserved: the pool double-books and a survivor's KV is silently
//!   corrupted. That is the `replay-page-leak` diagnostic, and the sweep's
//!   16th negative control proves the detector fires.

use crate::{Diagnostic, Pass};

// ---------------------------------------------------------------------------
// Circuit-breaker model.
// ---------------------------------------------------------------------------

/// Model state — a transcription of `dsi_serve::breaker::BreakerState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    Closed { failures: u32 },
    Open { until: u64 },
    HalfOpen,
}

/// Model admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAdmission {
    Admit,
    AdmitProbe,
    Reject,
}

/// Pure transcription of the serving circuit breaker, with abstract integer
/// time. Kept free of any `dsi-serve` dependency so the dependency edge
/// points the right way (serve → verify); conformance is enforced from the
/// serve side by lock-step tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerModel {
    pub threshold: u32,
    pub window: u64,
    pub state: ModelState,
    pub opens: u32,
}

impl BreakerModel {
    pub fn new(threshold: u32, window: u64) -> Self {
        assert!(threshold > 0 && window > 0);
        BreakerModel { threshold, window, state: ModelState::Closed { failures: 0 }, opens: 0 }
    }

    pub fn admit(&mut self, now: u64) -> ModelAdmission {
        match self.state {
            ModelState::Closed { .. } => ModelAdmission::Admit,
            ModelState::Open { until } if now >= until => {
                self.state = ModelState::HalfOpen;
                ModelAdmission::AdmitProbe
            }
            ModelState::Open { .. } | ModelState::HalfOpen => ModelAdmission::Reject,
        }
    }

    pub fn abort_probe(&mut self, now: u64) {
        if self.state == ModelState::HalfOpen {
            self.state = ModelState::Open { until: now };
        }
    }

    pub fn on_success(&mut self) {
        self.state = ModelState::Closed { failures: 0 };
    }

    pub fn on_failure(&mut self, now: u64) {
        match self.state {
            ModelState::Closed { failures } => {
                let n = failures + 1;
                if n >= self.threshold {
                    self.state = ModelState::Open { until: now + self.window };
                    self.opens += 1;
                } else {
                    self.state = ModelState::Closed { failures: n };
                }
            }
            ModelState::HalfOpen => {
                self.state = ModelState::Open { until: now + self.window };
                self.opens += 1;
            }
            ModelState::Open { .. } => {}
        }
    }
}

/// One abstract breaker event for the exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerEvent {
    Admit,
    Success,
    Failure,
    AbortProbe,
    Tick,
}

/// Exhaustively explore every event sequence of length `depth` against
/// `BreakerModel::new(threshold, window)` and check the safety invariants
/// after each transition. Returns one diagnostic per violated invariant
/// (deduplicated by code); empty means the state machine is safe over the
/// whole bounded behaviour space.
pub fn check_breaker_model(threshold: u32, window: u64, depth: usize) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let events =
        [BreakerEvent::Admit, BreakerEvent::Success, BreakerEvent::Failure, BreakerEvent::AbortProbe, BreakerEvent::Tick];
    let mut flag = |code: &'static str, trace: &[BreakerEvent], msg: String| {
        if !diags.iter().any(|d| d.code == code) {
            diags.push(Diagnostic::new(Pass::Collective, code, format!("event trace {trace:?}"), msg));
        }
    };

    // Iterative DFS over event strings; state space is tiny (|events|^depth).
    let mut stack: Vec<(BreakerModel, u64, Vec<BreakerEvent>)> =
        vec![(BreakerModel::new(threshold, window), 0, Vec::new())];
    while let Some((model, now, trace)) = stack.pop() {
        if trace.len() >= depth {
            continue;
        }
        for ev in events {
            let mut m = model;
            let mut t = now;
            let mut trace2 = trace.clone();
            trace2.push(ev);
            let before = m;
            match ev {
                BreakerEvent::Tick => t += 1,
                BreakerEvent::Admit => {
                    let verdict = m.admit(t);
                    match verdict {
                        ModelAdmission::Admit => {
                            if !matches!(before.state, ModelState::Closed { .. }) {
                                flag("breaker-admit-open", &trace2,
                                    format!("plain admission from non-closed state {:?}", before.state));
                            }
                        }
                        ModelAdmission::AdmitProbe => {
                            let ok = matches!(before.state, ModelState::Open { until } if t >= until);
                            if !ok || m.state != ModelState::HalfOpen {
                                flag("breaker-probe-early", &trace2,
                                    format!("probe admitted from {:?} at t={t}", before.state));
                            }
                        }
                        ModelAdmission::Reject => {
                            let open_within =
                                matches!(before.state, ModelState::Open { until } if t < until);
                            if !open_within && before.state != ModelState::HalfOpen {
                                flag("breaker-reject-closed", &trace2,
                                    format!("rejection from {:?} at t={t}", before.state));
                            }
                        }
                    }
                    // At most one probe in flight: a second admission while
                    // half-open must reject.
                    if m.state == ModelState::HalfOpen
                        && m.admit(t) != ModelAdmission::Reject
                    {
                        flag("breaker-double-probe", &trace2,
                            "second admission while a probe is in flight".to_string());
                    }
                }
                BreakerEvent::Success => m.on_success(),
                BreakerEvent::Failure => m.on_failure(t),
                BreakerEvent::AbortProbe => m.abort_probe(t),
            }
            // Global invariants, after every transition.
            if let ModelState::Closed { failures } = m.state {
                if failures >= threshold {
                    flag("breaker-threshold-missed", &trace2,
                        format!("closed with {failures} failures at threshold {threshold}"));
                }
            }
            let opened = matches!(m.state, ModelState::Open { .. })
                && !matches!(before.state, ModelState::Open { .. });
            // `opens` counts transitions into Open caused by a failure; an
            // aborted probe re-opens (window already elapsed) without
            // counting — it observed nothing new about the engine.
            let want_opens =
                before.opens + u32::from(opened && ev == BreakerEvent::Failure);
            if m.opens != want_opens {
                flag("breaker-opens-miscount", &trace2,
                    format!("opens {} → {} on {ev:?} (expected {want_opens})", before.opens, m.opens));
            }
            if opened && !matches!(ev, BreakerEvent::Failure | BreakerEvent::AbortProbe) {
                flag("breaker-spurious-open", &trace2,
                    format!("entered Open on {ev:?}"));
            }
            stack.push((m, t, trace2));
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Recovery-program checker.
// ---------------------------------------------------------------------------

/// One step of a scheduler fault-recovery program, over engine slot ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOp {
    /// An engine fault poisons every listed resident slot (its pages hold
    /// state past the committed prefix and cannot be trusted).
    Fault { slots: Vec<usize> },
    /// The slot's pages are returned to the pool.
    Release { slot: usize },
    /// The slot is re-seated by prefilling its committed prefix
    /// (re-reserving pages from the pool).
    Replay { slot: usize },
    /// The slot's sequence is evicted (terminal outcome delivered).
    Evict { slot: usize },
}

/// Per-slot page state tracked by [`check_recovery_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotPages {
    /// Resident with trusted pages.
    Clean,
    /// Resident, but the pages hold post-fault state.
    Poisoned,
    /// Pages returned to the pool.
    Released,
}

/// Check a recovery program for the page-accounting protocol the replay
/// design requires: a faulted slot's pages must be **released before the
/// slot is re-seated or evicted** (else the pool double-books — the
/// `replay-page-leak` diagnostic), a release must not run twice
/// (`replay-double-release`, the exact bug `PagePool::release`'s
/// double-free debug-assert catches at runtime), and by the end of the
/// program no slot may still be poisoned (`unrecovered-slot`).
pub fn check_recovery_program(n_slots: usize, ops: &[RecoveryOp]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut slots = vec![SlotPages::Clean; n_slots];
    for (i, op) in ops.iter().enumerate() {
        let site = |what: &str| format!("recovery op {i} ({what})");
        match op {
            RecoveryOp::Fault { slots: hit } => {
                for &s in hit {
                    if slots[s] == SlotPages::Released {
                        diags.push(Diagnostic::new(
                            Pass::Collective,
                            "fault-on-free-slot",
                            site("fault"),
                            format!("slot {s} poisoned while holding no pages"),
                        ));
                    } else {
                        slots[s] = SlotPages::Poisoned;
                    }
                }
            }
            RecoveryOp::Release { slot } => {
                if slots[*slot] == SlotPages::Released {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "replay-double-release",
                        site("release"),
                        format!("slot {slot} released twice — the free list would alias"),
                    ));
                }
                slots[*slot] = SlotPages::Released;
            }
            RecoveryOp::Replay { slot } => {
                if slots[*slot] != SlotPages::Released {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "replay-page-leak",
                        site("replay"),
                        format!(
                            "slot {slot} re-seated while its pages are still reserved \
                             ({:?}): the pool double-books and a survivor's KV aliases",
                            slots[*slot]
                        ),
                    ));
                }
                slots[*slot] = SlotPages::Clean;
            }
            RecoveryOp::Evict { slot } => {
                if slots[*slot] != SlotPages::Released {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "replay-page-leak",
                        site("evict"),
                        format!(
                            "slot {slot} evicted while its pages are still reserved: \
                             the outcome is delivered but the pages never return"
                        ),
                    ));
                }
                slots[*slot] = SlotPages::Released;
            }
        }
    }
    for (s, state) in slots.iter().enumerate() {
        if *state == SlotPages::Poisoned {
            diags.push(Diagnostic::new(
                Pass::Collective,
                "unrecovered-slot",
                "recovery program end",
                format!("slot {s} still holds poisoned pages at end of recovery"),
            ));
        }
    }
    diags
}

/// The recovery program the live scheduler executes on a decode-step fault
/// over `slots`: release every poisoned resident first (so the pool holds
/// at least the pre-fault free pages — replay demand equals pre-fault
/// demand, so every replay fits), then re-seat each, evicting those past
/// their replay budget. [`crate::sweep::verify_all`] checks this program
/// clean; the sweep's negative control perturbs it.
pub fn scheduler_recovery_program(slots: &[usize], evict: &[usize]) -> Vec<RecoveryOp> {
    let mut ops = vec![RecoveryOp::Fault { slots: slots.to_vec() }];
    for &s in slots {
        ops.push(RecoveryOp::Release { slot: s });
    }
    for &s in slots {
        if evict.contains(&s) {
            ops.push(RecoveryOp::Evict { slot: s });
        } else {
            ops.push(RecoveryOp::Replay { slot: s });
        }
    }
    ops
}

// ---------------------------------------------------------------------------
// Prefetch-program checker (the streaming weight offload of dsi-zero).
// ---------------------------------------------------------------------------

/// One step of an offload prefetch program, over weight-panel ids. This is
/// the abstract event alphabet of `dsi_zero::offload::OffloadStore`: the
/// worker (or a sync fallback) *fetches* panels into residency, the decode
/// loop *acquires* (pins) and *releases* them, and the budget *evicts*
/// unpinned residents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefetchOp {
    /// A panel becomes resident (checksum-verified read + pack).
    Fetch { panel: usize },
    /// The decode loop pins the panel for a layer step.
    Acquire { panel: usize },
    /// The decode loop drops its pin (release-before-refetch).
    Release { panel: usize },
    /// The budget evicts the panel.
    Evict { panel: usize },
}

/// Per-panel state tracked by [`check_prefetch_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PanelState {
    Absent,
    Resident { pinned: bool },
}

/// Check a prefetch program for the safety invariants of the streaming
/// weight store:
///
/// * `use-before-resident` — a panel is acquired while absent: the decode
///   loop would compute on unfetched (or evicted) weights;
/// * `evict-in-use` — an eviction removes a pinned panel out from under a
///   running layer step (or a panel that is not resident at all);
/// * `refetch-without-evict` — a resident panel is fetched again: the
///   budget double-counts its bytes;
/// * `release-unheld` — a release with no matching pin: the pin count
///   (the store's `Arc` strong count) would underflow;
/// * `offload-over-budget` — more than `capacity` panels resident at once.
pub fn check_prefetch_program(
    n_panels: usize,
    capacity: usize,
    ops: &[PrefetchOp],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut panels = vec![PanelState::Absent; n_panels];
    let mut resident = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let site = |what: &str| format!("prefetch op {i} ({what})");
        match *op {
            PrefetchOp::Fetch { panel } => {
                if matches!(panels[panel], PanelState::Resident { .. }) {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "refetch-without-evict",
                        site("fetch"),
                        format!("panel {panel} fetched while already resident — budget double-counts"),
                    ));
                } else {
                    panels[panel] = PanelState::Resident { pinned: false };
                    resident += 1;
                }
                if resident > capacity {
                    diags.push(Diagnostic::new(
                        Pass::Collective,
                        "offload-over-budget",
                        site("fetch"),
                        format!("{resident} panels resident, budget holds {capacity}"),
                    ));
                }
            }
            PrefetchOp::Acquire { panel } => match panels[panel] {
                PanelState::Absent => diags.push(Diagnostic::new(
                    Pass::Collective,
                    "use-before-resident",
                    site("acquire"),
                    format!("panel {panel} used before its fetch completed — the layer step would read absent weights"),
                )),
                PanelState::Resident { .. } => {
                    panels[panel] = PanelState::Resident { pinned: true };
                }
            },
            PrefetchOp::Release { panel } => match panels[panel] {
                PanelState::Resident { pinned: true } => {
                    panels[panel] = PanelState::Resident { pinned: false };
                }
                _ => diags.push(Diagnostic::new(
                    Pass::Collective,
                    "release-unheld",
                    site("release"),
                    format!("panel {panel} released without a pin — the pin count underflows"),
                )),
            },
            PrefetchOp::Evict { panel } => match panels[panel] {
                PanelState::Resident { pinned: false } => {
                    panels[panel] = PanelState::Absent;
                    resident -= 1;
                }
                PanelState::Resident { pinned: true } => diags.push(Diagnostic::new(
                    Pass::Collective,
                    "evict-in-use",
                    site("evict"),
                    format!("panel {panel} evicted while pinned by a running layer step"),
                )),
                PanelState::Absent => diags.push(Diagnostic::new(
                    Pass::Collective,
                    "evict-in-use",
                    site("evict"),
                    format!("panel {panel} evicted while not resident"),
                )),
            },
        }
    }
    diags
}

/// Transcribe the offload store's schedule for `layers` weight panels
/// decoded round-robin (two full passes, so wraparound reuse and eviction
/// are exercised), a prefetch `depth`, and a resident `capacity` in
/// panels: fetch-on-demand before each acquire, prefetch up to `depth`
/// panels ahead while the current one is pinned, evict the unpinned panel
/// with the furthest next use under the cyclic order (the store's exact
/// policy), drop prefetches that cannot fit, release before moving on.
/// [`crate::sweep::verify_all`] checks this program clean across a grid of
/// (layers × depth × capacity); the sweep's negative control acquires
/// before fetching.
pub fn prefetch_program(layers: usize, depth: usize, capacity: usize) -> Vec<PrefetchOp> {
    assert!(layers > 0 && capacity > 0);
    let mut ops = Vec::new();
    let mut resident: Vec<usize> = Vec::new();
    let depth = depth.min(capacity.saturating_sub(1)).min(layers.saturating_sub(1));
    // Evict the unpinned resident with the furthest next use in cyclic
    // layer order starting at `next`.
    fn evict_furthest(
        resident: &mut Vec<usize>,
        ops: &mut Vec<PrefetchOp>,
        layers: usize,
        next: usize,
        pinned: Option<usize>,
    ) -> bool {
        let victim = resident
            .iter()
            .copied()
            .filter(|&p| Some(p) != pinned)
            .max_by_key(|&p| (p + layers - next) % layers);
        match victim {
            Some(v) => {
                resident.retain(|&p| p != v);
                ops.push(PrefetchOp::Evict { panel: v });
                true
            }
            None => false,
        }
    }
    for _pass in 0..2 {
        for l in 0..layers {
            if !resident.contains(&l) {
                while resident.len() >= capacity {
                    assert!(evict_furthest(&mut resident, &mut ops, layers, l, None));
                }
                ops.push(PrefetchOp::Fetch { panel: l });
                resident.push(l);
            }
            ops.push(PrefetchOp::Acquire { panel: l });
            for i in 1..=depth {
                let t = (l + i) % layers;
                if resident.contains(&t) {
                    continue;
                }
                if resident.len() >= capacity
                    && !evict_furthest(&mut resident, &mut ops, layers, (l + 1) % layers, Some(l))
                {
                    continue; // nothing evictable: the store drops the prefetch
                }
                ops.push(PrefetchOp::Fetch { panel: t });
                resident.push(t);
            }
            ops.push(PrefetchOp::Release { panel: l });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_model_is_safe_over_bounded_space() {
        for (threshold, window) in [(1, 1), (2, 2), (3, 1)] {
            let diags = check_breaker_model(threshold, window, 6);
            assert!(diags.is_empty(), "threshold {threshold} window {window}: {diags:#?}");
        }
    }

    #[test]
    fn broken_transcription_would_be_caught() {
        // Sanity-check the explorer's teeth by violating an invariant
        // manually: a closed breaker at threshold.
        let mut m = BreakerModel::new(2, 2);
        m.state = ModelState::Closed { failures: 2 };
        // The explorer cannot reach this state, so check directly that the
        // invariant predicate the explorer uses rejects it.
        if let ModelState::Closed { failures } = m.state {
            assert!(failures >= m.threshold, "the state is the violation we constructed");
        }
    }

    #[test]
    fn scheduler_recovery_program_is_clean() {
        let ops = scheduler_recovery_program(&[0, 2, 3], &[2]);
        let diags = check_recovery_program(4, &ops);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn replay_without_release_is_a_page_leak() {
        let ops = vec![
            RecoveryOp::Fault { slots: vec![0] },
            RecoveryOp::Replay { slot: 0 }, // re-seats over reserved pages
        ];
        let diags = check_recovery_program(1, &ops);
        assert!(diags.iter().any(|d| d.code == "replay-page-leak"), "{diags:#?}");
    }

    #[test]
    fn prefetch_program_is_clean_across_the_grid() {
        for layers in [1usize, 2, 3, 5, 8] {
            for depth in [0usize, 1, 2, 4] {
                for capacity in [1usize, 2, 3, 6] {
                    let ops = prefetch_program(layers, depth, capacity);
                    let diags = check_prefetch_program(layers, capacity, &ops);
                    assert!(
                        diags.is_empty(),
                        "layers={layers} depth={depth} capacity={capacity}: {diags:#?}"
                    );
                }
            }
        }
    }

    #[test]
    fn acquire_before_fetch_is_use_before_resident() {
        let diags = check_prefetch_program(2, 2, &[PrefetchOp::Acquire { panel: 0 }]);
        assert!(diags.iter().any(|d| d.code == "use-before-resident"), "{diags:#?}");
    }

    #[test]
    fn evicting_a_pinned_panel_is_flagged() {
        let ops = vec![
            PrefetchOp::Fetch { panel: 0 },
            PrefetchOp::Acquire { panel: 0 },
            PrefetchOp::Evict { panel: 0 },
        ];
        let diags = check_prefetch_program(1, 1, &ops);
        assert!(diags.iter().any(|d| d.code == "evict-in-use"), "{diags:#?}");
    }

    #[test]
    fn refetch_over_budget_and_unheld_release_are_flagged() {
        let ops = vec![
            PrefetchOp::Fetch { panel: 0 },
            PrefetchOp::Fetch { panel: 0 }, // refetch-without-evict
            PrefetchOp::Fetch { panel: 1 }, // offload-over-budget (capacity 1)
            PrefetchOp::Release { panel: 1 }, // release-unheld (never pinned)
        ];
        let diags = check_prefetch_program(2, 1, &ops);
        assert!(diags.iter().any(|d| d.code == "refetch-without-evict"), "{diags:#?}");
        assert!(diags.iter().any(|d| d.code == "offload-over-budget"), "{diags:#?}");
        assert!(diags.iter().any(|d| d.code == "release-unheld"), "{diags:#?}");
    }

    #[test]
    fn prefetch_program_respects_capacity_exactly() {
        // Transcribed schedule for a tight budget keeps at most `capacity`
        // resident and exercises eviction (layers > capacity).
        let ops = prefetch_program(5, 2, 2);
        assert!(ops.iter().any(|op| matches!(op, PrefetchOp::Evict { .. })), "{ops:#?}");
        let diags = check_prefetch_program(5, 2, &ops);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn double_release_and_unrecovered_slots_are_flagged() {
        let ops = vec![
            RecoveryOp::Fault { slots: vec![0, 1] },
            RecoveryOp::Release { slot: 0 },
            RecoveryOp::Release { slot: 0 },
        ];
        let diags = check_recovery_program(2, &ops);
        assert!(diags.iter().any(|d| d.code == "replay-double-release"), "{diags:#?}");
        assert!(diags.iter().any(|d| d.code == "unrecovered-slot"), "{diags:#?}");
    }
}
