//! Pass 2 — scratch-arena aliasing and lifetime analysis.
//!
//! The fast decode path (`dsi-model::fast`) runs every fused region out of a
//! preallocated [`Scratch`](dsi_model::fast::Scratch) arena: seven named
//! buffers whose slices are handed to kernels as read and write operands.
//! The whole point of the arena is aggressive reuse — which is exactly what
//! makes it dangerous: a plan that hands one kernel overlapping read and
//! write slices of the same buffer computes a silently wrong answer, not a
//! crash.
//!
//! This pass checks a *step trace* — the sequence of kernel launches with
//! their declared buffer accesses — for three defect classes:
//! * `scratch-alias` — one step's write range overlaps another operand
//!   (read or write) of the same step on the same buffer;
//! * `use-before-init` — a step reads a range no earlier step (nor the
//!   assumed-initialized set) has fully written;
//! * `scratch-oob` — an access extends past the buffer's reserved capacity
//!   (the arena never reallocates mid-decode, so out-of-bounds here means a
//!   panic — or, for a hand-built plan, a quiet neighbour overwrite).
//!
//! [`decode_step_trace`] builds the trace of one `FastSession::forward`
//! call from the model configuration alone, against the arena layout
//! published by [`dsi_model::fast::scratch_layout`] — so the verifier and
//! the executor derive buffer capacities from the same source and cannot
//! drift silently. [`batched_decode_step_trace`] does the same for the
//! ragged-batch step (`PackedModel::forward_rows`): M sequences share the
//! row-stacked scratch but each owns a private KV cache, so the trace
//! carries per-row KV buffers and per-row attention launches at ragged
//! offsets.

use crate::{Diagnostic, Pass};
use dsi_model::config::GptConfig;
use dsi_model::fast::scratch_layout;
use serde::Serialize;

/// A half-open range of one named buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SliceRef {
    pub buf: &'static str,
    pub lo: usize,
    pub hi: usize,
}

impl SliceRef {
    pub fn new(buf: &'static str, lo: usize, hi: usize) -> Self {
        SliceRef { buf, lo, hi }
    }

    fn overlaps(&self, other: &SliceRef) -> bool {
        self.buf == other.buf && self.lo < other.hi && other.lo < self.hi
    }
}

/// One kernel launch: what it reads and what it writes.
#[derive(Debug, Clone, Serialize)]
pub struct Step {
    pub name: String,
    pub reads: Vec<SliceRef>,
    pub writes: Vec<SliceRef>,
}

impl Step {
    pub fn new(name: impl Into<String>, reads: Vec<SliceRef>, writes: Vec<SliceRef>) -> Self {
        Step { name: name.into(), reads, writes }
    }
}

/// The arena: named buffers with fixed capacities (in elements).
#[derive(Debug, Clone, Serialize)]
pub struct Arena {
    pub buffers: Vec<(&'static str, usize)>,
}

impl Arena {
    fn capacity(&self, buf: &str) -> Option<usize> {
        self.buffers.iter().find(|(n, _)| *n == buf).map(|&(_, c)| c)
    }
}

/// Sorted, disjoint initialized intervals of one buffer.
#[derive(Debug, Default)]
struct IntervalSet {
    ivs: Vec<(usize, usize)>,
}

impl IntervalSet {
    fn insert(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.ivs.push((lo, hi));
        self.ivs.sort_unstable();
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(self.ivs.len());
        for &(lo, hi) in &self.ivs {
            match merged.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.ivs = merged;
    }

    fn covers(&self, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return true;
        }
        self.ivs.iter().any(|&(a, b)| a <= lo && hi <= b)
    }
}

/// Check a step trace against an arena. `assume_init` names ranges that are
/// live before the trace starts (e.g. KV rows appended by earlier forward
/// calls). Returns all violations.
pub fn check_trace(arena: &Arena, steps: &[Step], assume_init: &[SliceRef]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut init: std::collections::BTreeMap<&'static str, IntervalSet> =
        std::collections::BTreeMap::new();
    for s in assume_init {
        init.entry(s.buf).or_default().insert(s.lo, s.hi);
    }

    let bounds = |site: &str, s: &SliceRef, diags: &mut Vec<Diagnostic>| match arena.capacity(s.buf) {
        None => {
            diags.push(Diagnostic::new(
                Pass::Scratch,
                "scratch-oob",
                site.to_string(),
                format!("references unknown buffer `{}`", s.buf),
            ));
            false
        }
        Some(cap) if s.hi > cap => {
            diags.push(Diagnostic::new(
                Pass::Scratch,
                "scratch-oob",
                site.to_string(),
                format!("`{}`[{}..{}] exceeds reserved capacity {}", s.buf, s.lo, s.hi, cap),
            ));
            false
        }
        Some(_) => true,
    };

    for step in steps {
        for r in &step.reads {
            if bounds(&step.name, r, &mut diags) {
                let covered = init.get(r.buf).map(|s| s.covers(r.lo, r.hi)).unwrap_or(false);
                if !covered {
                    diags.push(Diagnostic::new(
                        Pass::Scratch,
                        "use-before-init",
                        step.name.clone(),
                        format!("reads `{}`[{}..{}] before any step wrote it", r.buf, r.lo, r.hi),
                    ));
                }
            }
        }
        for w in &step.writes {
            bounds(&step.name, w, &mut diags);
        }
        // Intra-step aliasing: a kernel's write operand must not overlap any
        // *other* operand — a fused kernel streams its inputs while writing
        // its output, so overlap means reading half-updated data.
        for (wi, w) in step.writes.iter().enumerate() {
            for r in &step.reads {
                if w.overlaps(r) {
                    diags.push(Diagnostic::new(
                        Pass::Scratch,
                        "scratch-alias",
                        step.name.clone(),
                        format!(
                            "write `{}`[{}..{}] overlaps read `{}`[{}..{}]",
                            w.buf, w.lo, w.hi, r.buf, r.lo, r.hi
                        ),
                    ));
                }
            }
            for w2 in &step.writes[wi + 1..] {
                if w.overlaps(w2) {
                    diags.push(Diagnostic::new(
                        Pass::Scratch,
                        "scratch-alias",
                        step.name.clone(),
                        format!(
                            "writes `{}`[{}..{}] and `{}`[{}..{}] overlap",
                            w.buf, w.lo, w.hi, w2.buf, w2.lo, w2.hi
                        ),
                    ));
                }
            }
        }
        for w in &step.writes {
            init.entry(w.buf).or_default().insert(w.lo, w.hi);
        }
    }
    diags
}

/// Intern a dynamically built buffer name. Trace construction needs
/// `&'static str` names; interning bounds the leak to one copy per distinct
/// name across the whole process, no matter how many traces (batched sweeps
/// build hundreds) are generated.
fn intern(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERN: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERN.get_or_init(|| Mutex::new(HashSet::new())).lock().unwrap();
    match set.get(s.as_str()) {
        Some(&got) => got,
        None => {
            let leaked: &'static str = Box::leak(s.into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// Build the step trace of one `FastSession::forward(ids)` call with `m`
/// tokens entering at KV offset `offset`, mirroring the region sequence of
/// `dsi-model::fast` (embed → per-layer regions 1–5 with the x/y
/// double-buffer swap → final layer-norm + logits). Attention reads its
/// query rows *in place* from the QKV scratch at stride `3h` — there is no
/// gather step and no `m == 1` special case, matching
/// `fused::attention_seq_into`.
///
/// The arena combines the scratch buffers of [`scratch_layout`] with the
/// per-layer KV tensors (capacity `max_seq × hidden` each, matching
/// `KvCache::with_capacity`).
pub fn decode_step_trace(c: &GptConfig, m: usize, offset: usize) -> (Arena, Vec<Step>) {
    let h = c.hidden;
    let mut buffers: Vec<(&'static str, usize)> = scratch_layout(c, m).to_vec();
    // KV tensors: one K and one V per layer.
    for l in 0..c.layers {
        buffers.push((intern(format!("kv{l}.k")), c.max_seq * h));
        buffers.push((intern(format!("kv{l}.v")), c.max_seq * h));
    }
    let kv_name = |l: usize, side: &str| intern(format!("kv{l}.{side}"));

    let mut steps = Vec::new();
    // Embedding writes the first activation buffer.
    steps.push(Step::new(
        "embed",
        vec![],
        vec![SliceRef::new("x", 0, m * h)],
    ));
    // The x/y swap: `cur` holds the live activations, `alt` the spare.
    let (mut cur, mut alt) = ("x", "y");
    for l in 0..c.layers {
        let kn = kv_name(l, "k");
        let vn = kv_name(l, "v");
        // Region 1: layer-norm → QKV GEMM → bias. `normed` holds all m
        // normalized rows (the M-row GEMM consumes them in one launch).
        steps.push(Step::new(
            format!("l{l}.r1.ln_qkv"),
            vec![SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new("normed", 0, m * h), SliceRef::new("qkv", 0, m * 3 * h)],
        ));
        // KV append in place at the context offset.
        steps.push(Step::new(
            format!("l{l}.kv_append"),
            vec![SliceRef::new("qkv", 0, m * 3 * h)],
            vec![
                SliceRef::new(kn, offset * h, (offset + m) * h),
                SliceRef::new(vn, offset * h, (offset + m) * h),
            ],
        ));
        // Region 2: attention over the cache, query rows read in place from
        // the QKV scratch (stride 3h).
        steps.push(Step::new(
            format!("l{l}.r2.attention"),
            vec![
                SliceRef::new("qkv", 0, m * 3 * h),
                SliceRef::new(kn, 0, (offset + m) * h),
                SliceRef::new(vn, 0, (offset + m) * h),
            ],
            vec![SliceRef::new("attn", 0, m * h)],
        ));
        // Region 3: output projection + bias + residual (reads the residual
        // stream from `cur`, writes the spare).
        steps.push(Step::new(
            format!("l{l}.r3.attn_out"),
            vec![SliceRef::new("attn", 0, m * h), SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new(alt, 0, m * h)],
        ));
        std::mem::swap(&mut cur, &mut alt);
        // Region 4: layer-norm → FF1 GEMM → bias → GeLU.
        steps.push(Step::new(
            format!("l{l}.r4.ln_ff1"),
            vec![SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new("normed", 0, m * h), SliceRef::new("ff", 0, m * 4 * h)],
        ));
        // Region 5: FF2 GEMM + bias + residual.
        steps.push(Step::new(
            format!("l{l}.r5.ff2"),
            vec![SliceRef::new("ff", 0, m * 4 * h), SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new(alt, 0, m * h)],
        ));
        std::mem::swap(&mut cur, &mut alt);
    }
    steps.push(Step::new(
        "final_ln",
        vec![SliceRef::new(cur, 0, m * h)],
        vec![SliceRef::new("normed", 0, m * h)],
    ));
    steps.push(Step::new(
        "logits",
        vec![SliceRef::new("normed", 0, m * h)],
        vec![SliceRef::new("logits", 0, m * c.vocab)],
    ));
    (Arena { buffers }, steps)
}

/// Build the step trace of one batched decode step
/// (`PackedModel::forward_rows`) over `offsets.len()` sequences, sequence
/// `i` entering at its own KV offset `offsets[i]` (ragged contexts). The
/// dense regions (1, 3, 4, 5 and the final layer-norm + logits) are single
/// M-row launches over the shared row-stacked scratch; the KV append and
/// attention are per-row launches against that row's *private* KV buffers
/// (`kv{l}.r{i}.k/v`), which is exactly the isolation the batched path must
/// preserve — two rows touching the same KV tensor would be cross-sequence
/// corruption.
pub fn batched_decode_step_trace(c: &GptConfig, offsets: &[usize]) -> (Arena, Vec<Step>) {
    let h = c.hidden;
    let m = offsets.len();
    assert!(m > 0, "batched trace needs at least one row");
    let mut buffers: Vec<(&'static str, usize)> = scratch_layout(c, m).to_vec();
    for l in 0..c.layers {
        for i in 0..m {
            buffers.push((intern(format!("kv{l}.r{i}.k")), c.max_seq * h));
            buffers.push((intern(format!("kv{l}.r{i}.v")), c.max_seq * h));
        }
    }
    let kv_name = |l: usize, i: usize, side: &str| intern(format!("kv{l}.r{i}.{side}"));

    let mut steps = Vec::new();
    steps.push(Step::new(
        "embed",
        vec![],
        vec![SliceRef::new("x", 0, m * h)],
    ));
    let (mut cur, mut alt) = ("x", "y");
    for l in 0..c.layers {
        steps.push(Step::new(
            format!("l{l}.r1.ln_qkv"),
            vec![SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new("normed", 0, m * h), SliceRef::new("qkv", 0, m * 3 * h)],
        ));
        for (i, &off) in offsets.iter().enumerate() {
            let kn = kv_name(l, i, "k");
            let vn = kv_name(l, i, "v");
            steps.push(Step::new(
                format!("l{l}.row{i}.kv_append"),
                vec![SliceRef::new("qkv", i * 3 * h, (i + 1) * 3 * h)],
                vec![
                    SliceRef::new(kn, off * h, (off + 1) * h),
                    SliceRef::new(vn, off * h, (off + 1) * h),
                ],
            ));
            steps.push(Step::new(
                format!("l{l}.row{i}.attention"),
                vec![
                    SliceRef::new("qkv", i * 3 * h, i * 3 * h + h),
                    SliceRef::new(kn, 0, (off + 1) * h),
                    SliceRef::new(vn, 0, (off + 1) * h),
                ],
                vec![SliceRef::new("attn", i * h, (i + 1) * h)],
            ));
        }
        steps.push(Step::new(
            format!("l{l}.r3.attn_out"),
            vec![SliceRef::new("attn", 0, m * h), SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new(alt, 0, m * h)],
        ));
        std::mem::swap(&mut cur, &mut alt);
        steps.push(Step::new(
            format!("l{l}.r4.ln_ff1"),
            vec![SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new("normed", 0, m * h), SliceRef::new("ff", 0, m * 4 * h)],
        ));
        steps.push(Step::new(
            format!("l{l}.r5.ff2"),
            vec![SliceRef::new("ff", 0, m * 4 * h), SliceRef::new(cur, 0, m * h)],
            vec![SliceRef::new(alt, 0, m * h)],
        ));
        std::mem::swap(&mut cur, &mut alt);
    }
    steps.push(Step::new(
        "final_ln",
        vec![SliceRef::new(cur, 0, m * h)],
        vec![SliceRef::new("normed", 0, m * h)],
    ));
    steps.push(Step::new(
        "logits",
        vec![SliceRef::new("normed", 0, m * h)],
        vec![SliceRef::new("logits", 0, m * c.vocab)],
    ));
    (Arena { buffers }, steps)
}

/// Assumed-initialized KV rows for a trace entering at `offset > 0`: rows
/// `0..offset` of every layer's K and V were appended by earlier calls.
pub fn kv_preinit(arena: &Arena, c: &GptConfig, offset: usize) -> Vec<SliceRef> {
    if offset == 0 {
        return Vec::new();
    }
    arena
        .buffers
        .iter()
        .filter(|(n, _)| n.starts_with("kv"))
        .map(|&(n, _)| SliceRef::new(n, 0, offset * c.hidden))
        .collect()
}

/// Assumed-initialized KV rows for a batched trace: row `i`'s private K/V
/// buffers hold `0..offsets[i]` context rows from earlier steps.
pub fn batched_kv_preinit(c: &GptConfig, offsets: &[usize]) -> Vec<SliceRef> {
    let mut pre = Vec::new();
    for l in 0..c.layers {
        for (i, &off) in offsets.iter().enumerate() {
            if off == 0 {
                continue;
            }
            pre.push(SliceRef::new(intern(format!("kv{l}.r{i}.k")), 0, off * c.hidden));
            pre.push(SliceRef::new(intern(format!("kv{l}.r{i}.v")), 0, off * c.hidden));
        }
    }
    pre
}

/// Verify the fast decode path of one model config for both phases:
/// multi-row prompt ingestion and steady-state single-token decode.
pub fn verify_decode_plan(c: &GptConfig, prompt_len: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (arena, steps) = decode_step_trace(c, prompt_len.max(1), 0);
    diags.extend(check_trace(&arena, &steps, &[]));
    let (arena, steps) = decode_step_trace(c, 1, prompt_len);
    let pre = kv_preinit(&arena, c, prompt_len);
    diags.extend(check_trace(&arena, &steps, &pre));
    diags
}

/// Verify one batched decode step at ragged per-row KV offsets.
pub fn verify_batched_decode_plan(c: &GptConfig, offsets: &[usize]) -> Vec<Diagnostic> {
    let (arena, steps) = batched_decode_step_trace(c, offsets);
    let pre = batched_kv_preinit(c, offsets);
    check_trace(&arena, &steps, &pre)
}

/// Seeded negative control for the batched layout: two M-row attention
/// launches whose output slices alias (row stride `h` but write width `2h`,
/// as if a row-pitch bug doubled the write extent). Packaged as a single
/// fused launch — exactly how a real batched kernel would issue it — so the
/// intra-step write/write overlap check must fire `scratch-alias`.
pub fn aliased_batched_rows_trace(h: usize) -> (Arena, Vec<Step>) {
    let m = 2usize;
    let arena = Arena {
        buffers: vec![("qkv", m * 3 * h), ("attn", m * h + h)],
    };
    let steps = vec![
        Step::new("qkv_init", vec![], vec![SliceRef::new("qkv", 0, m * 3 * h)]),
        Step::new(
            "batched_attention_rows",
            vec![SliceRef::new("qkv", 0, m * 3 * h)],
            vec![
                // Row 0 writes [0, 2h) instead of [0, h): spills into row 1.
                SliceRef::new("attn", 0, 2 * h),
                SliceRef::new("attn", h, 3 * h),
            ],
        ),
    ];
    (arena, steps)
}

/// Paged-KV disjointness check: the page tables of all live sequences
/// must map **pairwise-distinct** pages, each inside the pool. The paged
/// engine's correctness argument ("same FLOPs, different addressing")
/// silently collapses if two sequences ever share a page — each decode
/// step would overwrite the other's KV rows and both streams would go
/// wrong without any kernel-level fault — so the sweep re-proves
/// disjointness over a live allocator's tables, and the negative control
/// seeds exactly that two-sequences-one-page defect.
pub fn check_page_tables(pages_total: usize, tables: &[Vec<u32>]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // First owner of each page, for the witness in the alias message.
    let mut owner: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for (s, table) in tables.iter().enumerate() {
        for (slot, &p) in table.iter().enumerate() {
            if p as usize >= pages_total {
                diags.push(Diagnostic::new(
                    Pass::Scratch,
                    "page-out-of-range",
                    format!("seq {s} table entry {slot}"),
                    format!("page {p} outside pool of {pages_total} pages"),
                ));
                continue;
            }
            match owner.get(&p) {
                Some(&first) if first == s => diags.push(Diagnostic::new(
                    Pass::Scratch,
                    "page-alias",
                    format!("seq {s} table entry {slot}"),
                    format!("page {p} mapped twice by the same sequence"),
                )),
                Some(&first) => diags.push(Diagnostic::new(
                    Pass::Scratch,
                    "page-alias",
                    format!("seq {s} table entry {slot}"),
                    format!(
                        "page {p} already mapped by seq {first}: two sequences \
                         writing one page corrupt each other's KV rows"
                    ),
                )),
                None => {
                    owner.insert(p, s);
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;

    #[test]
    fn fast_path_trace_is_clean() {
        for (m, off) in [(1usize, 0usize), (4, 0), (1, 7), (8, 0)] {
            let c = zoo::tiny(3);
            let (arena, steps) = decode_step_trace(&c, m, off);
            let pre = kv_preinit(&arena, &c, off);
            let d = check_trace(&arena, &steps, &pre);
            assert!(d.is_empty(), "m={m} off={off}: {d:?}");
        }
    }

    #[test]
    fn verify_decode_plan_clean_for_zoo_models() {
        let d = verify_decode_plan(&zoo::tiny(2), 8);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn batched_trace_is_clean_at_ragged_offsets() {
        let c = zoo::tiny(3);
        for offsets in [vec![0], vec![3, 1], vec![5, 0, 2, 9], vec![1; 16]] {
            let d = verify_batched_decode_plan(&c, &offsets);
            assert!(d.is_empty(), "offsets={offsets:?}: {d:?}");
        }
    }

    #[test]
    fn batched_rows_share_no_kv_buffers() {
        // Two rows of the same layer must reference distinct KV buffers —
        // the trace-level statement of per-sequence cache isolation.
        let c = zoo::tiny(1);
        let (arena, _) = batched_decode_step_trace(&c, &[4, 7]);
        let kv: Vec<&str> =
            arena.buffers.iter().map(|&(n, _)| n).filter(|n| n.starts_with("kv")).collect();
        let unique: std::collections::HashSet<&str> = kv.iter().copied().collect();
        assert_eq!(kv.len(), unique.len());
        assert_eq!(kv.len(), 2 * 2); // 1 layer × 2 rows × {k, v}
    }

    #[test]
    fn aliased_batched_rows_control_fires() {
        let (arena, steps) = aliased_batched_rows_trace(8);
        let d = check_trace(&arena, &steps, &[]);
        assert!(
            d.iter().any(|x| x.code == "scratch-alias" && x.site == "batched_attention_rows"),
            "{d:?}"
        );
    }

    #[test]
    fn interner_returns_stable_pointers() {
        let a = super::intern("kv0.r0.k".to_string());
        let b = super::intern("kv0.r0.k".to_string());
        assert!(std::ptr::eq(a, b), "same name must intern to one allocation");
    }

    #[test]
    fn aliased_write_is_rejected() {
        // A kernel writing its own residual input: the classic scratch-reuse
        // bug the pass exists for.
        let arena = Arena { buffers: vec![("x", 64), ("y", 64)] };
        let steps = vec![
            Step::new("init", vec![], vec![SliceRef::new("x", 0, 64)]),
            Step::new(
                "bad_residual",
                vec![SliceRef::new("x", 0, 64)],
                vec![SliceRef::new("x", 0, 64)],
            ),
        ];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.iter().any(|x| x.code == "scratch-alias" && x.site == "bad_residual"), "{d:?}");
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let arena = Arena { buffers: vec![("buf", 100)] };
        let steps = vec![
            Step::new("init", vec![], vec![SliceRef::new("buf", 0, 100)]),
            Step::new(
                "shifted",
                vec![SliceRef::new("buf", 0, 60)],
                vec![SliceRef::new("buf", 40, 100)],
            ),
        ];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.iter().any(|x| x.code == "scratch-alias"), "{d:?}");
    }

    #[test]
    fn disjoint_reuse_is_legal() {
        let arena = Arena { buffers: vec![("buf", 100)] };
        let steps = vec![
            Step::new("init", vec![], vec![SliceRef::new("buf", 0, 50)]),
            Step::new(
                "pack",
                vec![SliceRef::new("buf", 0, 50)],
                vec![SliceRef::new("buf", 50, 100)],
            ),
        ];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn use_before_init_is_rejected() {
        let arena = Arena { buffers: vec![("a", 10), ("b", 10)] };
        let steps = vec![Step::new("consume", vec![SliceRef::new("a", 0, 10)], vec![SliceRef::new("b", 0, 10)])];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.iter().any(|x| x.code == "use-before-init"), "{d:?}");
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let arena = Arena { buffers: vec![("a", 10)] };
        let steps = vec![Step::new("w", vec![], vec![SliceRef::new("a", 0, 11)])];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.iter().any(|x| x.code == "scratch-oob"), "{d:?}");
        let steps = vec![Step::new("w", vec![], vec![SliceRef::new("ghost", 0, 1)])];
        let d = check_trace(&arena, &steps, &[]);
        assert!(d.iter().any(|x| x.code == "scratch-oob"), "{d:?}");
    }

    #[test]
    fn disjoint_page_tables_are_clean() {
        let d = check_page_tables(8, &[vec![0, 3, 6], vec![1, 4], vec![7]]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn shared_and_duplicated_pages_are_flagged() {
        // Cross-sequence share (page 2) and an intra-table duplicate (5, 5).
        let d = check_page_tables(8, &[vec![0, 2], vec![2, 3], vec![5, 5]]);
        assert_eq!(
            d.iter().filter(|x| x.code == "page-alias").count(),
            2,
            "{d:?}"
        );
    }

    #[test]
    fn out_of_range_page_is_flagged() {
        let d = check_page_tables(4, &[vec![0, 4]]);
        assert!(d.iter().any(|x| x.code == "page-out-of-range"), "{d:?}");
    }

    #[test]
    fn oversized_prompt_trace_is_flagged_oob() {
        // A prompt longer than the scratch arena was sized for: the trace
        // built with the *small* arena must flag the overflow statically.
        let c = zoo::tiny(1);
        let (small_arena, _) = decode_step_trace(&c, 2, 0);
        let (_, big_steps) = decode_step_trace(&c, 8, 0);
        let d = check_trace(&small_arena, &big_steps, &[]);
        assert!(d.iter().any(|x| x.code == "scratch-oob"), "{d:?}");
    }
}
