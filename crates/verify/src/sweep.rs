//! The `cargo xtask verify` entry point: run every static pass over every
//! configuration the paper-reproduction binaries actually execute, plus
//! negative controls proving the detectors still detect.
//!
//! [`verify_all`] sweeps:
//! * **IR** — every Table I model × {prompt, generation} phase × batch sizes
//!   × the model's TP degrees (1, its Fig. 6 degree, its Fig. 8 degree) ×
//!   all four canonical fusion plans;
//! * **Scratch** — the fast decode path of each dense model (prompt
//!   ingestion + steady-state decode against the real arena layout), plus
//!   the batched ragged-offset step at every dispatcher batch size
//!   M ∈ {1, 2, 4, 8, 16};
//! * **Collective** — tensor-parallel all-reduce programs for each Fig. 6
//!   mapping, the executed TP engine's barrier-fenced shared-memory
//!   all-reduce schedule at its bench degrees, pipeline p2p programs and
//!   task-graph structure for the Fig. 8 mappings, expert-parallel
//!   all-to-all programs for each Table II model;
//! * **Audit** — runs separately in xtask (it needs the source tree).
//!
//! [`negative_controls`] seeds one defect of each class the verifier claims
//! to catch — a dtype-mixed region, a corrupted GEMM contraction, an illegal
//! fusion boundary, an aliased scratch write, a pair of aliasing M-row
//! attention regions in the batched layout, two sequences mapped to one KV
//! page in the paged allocator, a rank skipping an all-reduce,
//! a rank skipping a shared-memory barrier crossing, a cyclic task graph,
//! an undocumented `unsafe` block, a rank exiting mid-schedule (survivors
//! must abort typed), a recv stranded by a dead sender, a survivor
//! deadlock that an unrelated exit must not mask, and a fault recovery
//! that replays a resident without releasing its poisoned pages — and
//! returns the
//! diagnostics each produced. CI fails if any control comes back clean: a
//! verifier that stops detecting is worse than none.

use crate::collective::{
    check_exit_safety, check_pipeline, check_programs, ep_alltoall_programs, find_cycle,
    pp_p2p_programs, simulate_rendezvous, simulate_rendezvous_with_exits, tp_allreduce_programs,
    tp_exec_allreduce_programs, DiGraph, ExitPlan, Op, Programs,
};
use crate::ir::verify_layer_plan;
use crate::scratch::{check_trace, Arena, SliceRef, Step};
use crate::{Diagnostic, Pass};
use dsi_kernels::fusion::FusionPlan;
use dsi_kernels::graph::{transformer_layer_ops_tp, OpKind};
use dsi_model::zoo;
use dsi_parallel::mapping::Mapping3D;
use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};
use dsi_sim::hw::DType;

/// Outcome of one sweep: how much was checked, and everything found.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Number of (model, phase, batch, tp, plan) IR combinations verified.
    pub ir_plans: usize,
    /// Number of decode traces analysed.
    pub scratch_traces: usize,
    /// Number of collective program sets / pipeline graphs checked.
    pub collective_programs: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl SweepReport {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn canonical_plans() -> Vec<(&'static str, FusionPlan)> {
    vec![
        ("unfused", FusionPlan::unfused(12)),
        ("deepspeed_small_batch", FusionPlan::deepspeed_small_batch()),
        ("deepspeed_large_batch", FusionPlan::deepspeed_large_batch()),
        ("faster_transformer", FusionPlan::faster_transformer()),
    ]
}

/// TP degrees this entry is actually run at by the figure binaries.
fn tp_degrees(e: &zoo::DenseEntry) -> Vec<usize> {
    let mut tps = vec![1];
    if e.fig6_tp > 1 {
        tps.push(e.fig6_tp);
    }
    if let Some((tp, _)) = e.fig8 {
        if !tps.contains(&tp) {
            tps.push(tp);
        }
    }
    tps.retain(|&tp| e.config.hidden.is_multiple_of(tp) && e.config.heads.is_multiple_of(tp));
    tps
}

/// Pipeline spec used for the Fig. 8 structural checks (representative
/// timings; the structure, not the numbers, is what is verified).
fn fig8_spec(pp: usize) -> PipelineSpec {
    PipelineSpec {
        stages: pp,
        prompt_microbatches: 2 * pp,
        gen_microbatches: pp,
        gen_tokens: 8,
        stage_prompt_time_full: 40e-3,
        stage_gen_time: 2e-3,
        microbatch_overhead: 0.1e-3,
        p2p_time: 0.05e-3,
    }
}

/// Run every static pass over every zoo model × figure configuration.
pub fn verify_all() -> SweepReport {
    let mut report = SweepReport {
        ir_plans: 0,
        scratch_traces: 0,
        collective_programs: 0,
        diagnostics: Vec::new(),
    };
    let plans = canonical_plans();
    let prompt = 128usize;
    let gen_ctx = prompt + 8;

    for e in zoo::table1() {
        let c = &e.config;
        let site = |what: &str| format!("{} {what}", c.name);

        // --- Pass 1: IR over both phases × batches × TP × plans. ---
        for tp in tp_degrees(&e) {
            for batch in [1usize, 8, 32] {
                // (t_new, t_ctx): prompt ingestion and steady-state decode.
                for (t_new, t_ctx) in [(prompt, prompt), (1, gen_ctx)] {
                    let ops = transformer_layer_ops_tp(
                        batch, t_new, t_ctx, c.hidden, c.heads, tp, DType::Fp16,
                    );
                    for (pname, plan) in &plans {
                        let d = verify_layer_plan(&ops, plan, None);
                        report.ir_plans += 1;
                        report.diagnostics.extend(d.into_iter().map(|mut x| {
                            x.site = format!(
                                "{} tp={tp} b={batch} t=({t_new},{t_ctx}) plan={pname}: {}",
                                c.name, x.site
                            );
                            x
                        }));
                    }
                }
            }
        }

        // --- Pass 2: scratch arena of the fast decode path. ---
        // Trace a 16-token prompt: long enough to exercise the strided
        // multi-row attention, cheap enough to run for the 530B layer count.
        let d = crate::scratch::verify_decode_plan(c, 16);
        report.scratch_traces += 2; // prompt + decode trace
        report.diagnostics.extend(d.into_iter().map(|mut x| {
            x.site = format!("{}: {}", site("decode"), x.site);
            x
        }));

        // --- Pass 2b: batched ragged-offset decode (forward_rows). ---
        // Each batch size the M-row dispatcher distinguishes, at staggered
        // per-row offsets so no two rows are at the same context length.
        for m in [1usize, 2, 4, 8, 16] {
            let offsets: Vec<usize> = (0..m).map(|i| 1 + (i * 3) % 13).collect();
            let d = crate::scratch::verify_batched_decode_plan(c, &offsets);
            report.scratch_traces += 1;
            report.diagnostics.extend(d.into_iter().map(|mut x| {
                x.site = format!("{}: {}", site(&format!("batched m={m}")), x.site);
                x
            }));
        }

        // --- Pass 3a: Fig. 6 tensor-parallel all-reduce programs. ---
        if e.fig6_tp > 1 {
            let m = Mapping3D::new(1, 1, e.fig6_tp);
            let (groups, progs) = tp_allreduce_programs(&m, c.layers, 2 * c.hidden as u64);
            report.collective_programs += 1;
            report.diagnostics.extend(check_programs(&groups, &progs));
        }

        // --- Pass 3b: Fig. 8 pipeline structure + p2p rendezvous. ---
        if let Some((tp, pp)) = e.fig8 {
            let spec = fig8_spec(pp);
            for sched in [PipelineSchedule::TrainingStyle, PipelineSchedule::InferenceQueue] {
                report.collective_programs += 1;
                report.diagnostics.extend(check_pipeline(&spec, sched));
            }
            let m = Mapping3D::new(1, pp, tp);
            let progs = pp_p2p_programs(&m, spec.prompt_microbatches, 2 * c.hidden as u64);
            report.collective_programs += 1;
            report.diagnostics.extend(simulate_rendezvous(&progs));
        }
    }

    // --- Pass 2c: paged-KV allocator page-table disjointness. ---
    // Reserve/release/re-reserve churn on a real `PagePool` (the continuous
    // scheduler's allocator), then prove every live table maps distinct
    // in-range pages. Free-list recycling is exactly where an aliasing bug
    // would creep in, so the churn retires a middle sequence and grows the
    // survivors through the recycled pages before checking.
    {
        use dsi_model::paged::{PagePool, PagedSeq};
        let mut pool = PagePool::new(2, 16, 24, 4);
        let mut seqs: Vec<PagedSeq> = (0..4).map(|_| PagedSeq::new()).collect();
        for (i, s) in seqs.iter_mut().enumerate() {
            pool.reserve(s, 3 + 5 * i).expect("sweep pool sized to fit");
        }
        let mut mid = seqs.remove(1);
        pool.release(&mut mid);
        for s in seqs.iter_mut() {
            pool.reserve(s, 20).expect("recycled pages cover the growth");
        }
        let tables: Vec<Vec<u32>> = seqs.iter().map(|s| s.pages().to_vec()).collect();
        report.scratch_traces += 1;
        report.diagnostics.extend(
            crate::scratch::check_page_tables(24, &tables).into_iter().map(|mut x| {
                x.site = format!("paged-kv pool: {}", x.site);
                x
            }),
        );
    }

    // --- Pass 3c: executed TP engine's barrier-fenced shmem programs. ---
    // The threaded engine (dsi-parallel::tp_exec) runs at the bench degrees
    // {1, 2, 4}; verify its per-step barrier/reduce-scatter/all-gather
    // schedule is deadlock-free at each.
    for world in [1usize, 2, 4] {
        let (groups, progs) = tp_exec_allreduce_programs(world, 4, 4 * 256);
        report.collective_programs += 1;
        report.diagnostics.extend(check_programs(&groups, &progs).into_iter().map(|mut x| {
            x.site = format!("tp_exec world={world}: {}", x.site);
            x
        }));
    }

    // --- Pass 3c': serving-runtime lock models (dsi-serve). ---
    // The multi-threaded control planes in the workspace: the single-flight
    // worker and the continuous-batching scheduler. Each held-while-acquiring
    // graph must stay acyclic and every condvar wait disciplined. A future
    // second lock ordered inconsistently against the state mutex fails the
    // sweep here.
    for (what, (n_locks, threads)) in [
        ("serve runtime", crate::locks::serve_runtime_model()),
        ("continuous scheduler", crate::locks::continuous_scheduler_model()),
    ] {
        report.collective_programs += 1;
        report.diagnostics.extend(
            crate::locks::check_lock_order(n_locks, &threads).into_iter().map(|mut x| {
                x.site = format!("{what}: {}", x.site);
                x
            }),
        );
    }

    // --- Pass 3c'': serving-runtime state machines (dsi-serve). ---
    // The circuit breaker explored exhaustively over every event sequence
    // of bounded depth at the thresholds the serve configs use, and the
    // scheduler's fault-recovery page protocol (release every poisoned
    // slot before any replay reserves) over representative fan-outs.
    for (threshold, window) in [(1u32, 1u64), (2, 2), (3, 1)] {
        report.collective_programs += 1;
        report.diagnostics.extend(
            crate::runtime::check_breaker_model(threshold, window, 6).into_iter().map(|mut x| {
                x.site = format!("breaker t={threshold} w={window}: {}", x.site);
                x
            }),
        );
    }
    for (slots, evict) in [
        (vec![0usize, 1, 2], vec![]),
        (vec![0usize, 2, 5], vec![2usize]),
        (vec![1usize], vec![1usize]),
    ] {
        let prog = crate::runtime::scheduler_recovery_program(&slots, &evict);
        report.collective_programs += 1;
        report.diagnostics.extend(
            crate::runtime::check_recovery_program(8, &prog).into_iter().map(|mut x| {
                x.site = format!("recovery slots={slots:?} evict={evict:?}: {}", x.site);
                x
            }),
        );
    }

    // The streaming weight store's prefetch schedule (dsi-zero offload):
    // the transcribed fetch/acquire/evict/release program must never use a
    // panel before it is resident, evict a pinned panel, or exceed the
    // resident budget, across layer counts × prefetch depths × budgets.
    for layers in [2usize, 3, 5] {
        for depth in [0usize, 1, 2] {
            for capacity in [1usize, 2, 3] {
                let prog = crate::runtime::prefetch_program(layers, depth, capacity);
                report.collective_programs += 1;
                report.diagnostics.extend(
                    crate::runtime::check_prefetch_program(layers, capacity, &prog)
                        .into_iter()
                        .map(|mut x| {
                            x.site = format!(
                                "prefetch layers={layers} depth={depth} cap={capacity}: {}",
                                x.site
                            );
                            x
                        }),
                );
            }
        }
    }

    // --- Pass 3d: Table II expert-parallel all-to-all programs. ---
    for moe in zoo::table2() {
        let bytes = 2 * moe.base.hidden as u64;
        let (groups, progs) =
            ep_alltoall_programs(moe.gpus, moe.ep_degree, moe.moe_layers, bytes);
        report.collective_programs += 1;
        report.diagnostics.extend(check_programs(&groups, &progs).into_iter().map(|mut x| {
            x.site = format!("{}: {}", moe.name, x.site);
            x
        }));
    }

    // --- Pass 3e: exit-safety of the executed TP engine's schedule. ---
    // Model "rank r exits at op e" for every rank × a sample of epochs: the
    // hardened runtime's bounded timeouts must convert every such loss into
    // a typed abort on the survivors — never a silent deadlock. The typed
    // aborts are the expected outcome; `check_exit_safety` returns only
    // what is left silently stuck.
    for world in [2usize, 4] {
        let (_, progs) = tp_exec_allreduce_programs(world, 2, 512);
        let len = progs[&0].len();
        for rank in 0..world {
            for at in [0usize, 1, len / 2, len - 1] {
                let exits = ExitPlan::from([(rank, at)]);
                report.collective_programs += 1;
                report.diagnostics.extend(
                    check_exit_safety(&progs, &exits).into_iter().map(|mut x| {
                        x.site = format!(
                            "tp_exec world={world}, rank {rank} exits at op {at}: {}",
                            x.site
                        );
                        x
                    }),
                );
            }
        }
    }

    report
}

/// One seeded defect and what the verifier said about it.
#[derive(Debug, Clone)]
pub struct Control {
    pub name: &'static str,
    /// The diagnostic code this defect must produce.
    pub expect_code: &'static str,
    pub diagnostics: Vec<Diagnostic>,
}

impl Control {
    /// Did the verifier catch the seeded defect?
    pub fn fired(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code == self.expect_code)
    }
}

/// Seed one illegal plan per defect class and collect what the passes say.
/// Every control must fire; [`controls_all_fire`] is the CI gate.
pub fn negative_controls() -> Vec<Control> {
    let mut out = Vec::new();
    let base = || transformer_layer_ops_tp(2, 4, 4, 64, 4, 1, DType::Fp16);

    // IR: corrupted FF2 contraction width (a bad TP shard).
    let mut ops = base();
    if let OpKind::Gemm { k, .. } = &mut ops[10].kind {
        *k += 8;
    }
    out.push(Control {
        name: "inner-dim mismatch (corrupted ff2 k)",
        expect_code: "inner-dim-mismatch",
        diagnostics: verify_layer_plan(&ops, &FusionPlan::unfused(12), None),
    });

    // IR: INT8 and FP16 GEMMs fused into one region.
    let mut ops = base();
    if let OpKind::Gemm { weight_dtype, .. } = &mut ops[8].kind {
        *weight_dtype = DType::Int8; // ff1 INT8, ff2 stays FP16
    }
    let ff_region = FusionPlan {
        regions: vec![(0, 3), (3, 5), (5, 7), (7, 12)],
    };
    out.push(Control {
        name: "dtype mix inside fused region (int8 ff1 + fp16 ff2)",
        expect_code: "dtype-mix",
        diagnostics: verify_layer_plan(&ops, &ff_region, None),
    });

    // IR: fusing attention (Head-tiled) with the output GEMM (Token/OutputCol).
    let bad_fuse = FusionPlan {
        regions: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 6), (6, 12)],
    };
    out.push(Control {
        name: "no shared tileable axis (attention+attn_out_gemm)",
        expect_code: "no-shared-axis",
        diagnostics: verify_layer_plan(&base(), &bad_fuse, None),
    });

    // Scratch: a kernel writing over its own residual input.
    let arena = Arena { buffers: vec![("x", 64), ("y", 64)] };
    let steps = vec![
        Step::new("init", vec![], vec![SliceRef::new("x", 0, 64)]),
        Step::new(
            "residual_in_place",
            vec![SliceRef::new("x", 0, 64)],
            vec![SliceRef::new("x", 0, 64)],
        ),
    ];
    out.push(Control {
        name: "aliased scratch write (in-place residual)",
        expect_code: "scratch-alias",
        diagnostics: check_trace(&arena, &steps, &[]),
    });

    // Scratch, batched layout: two M-row attention launches whose output
    // rows alias (row pitch h, write width 2h) — the cross-row overwrite
    // class the batched sweep exists to catch.
    let (arena, steps) = crate::scratch::aliased_batched_rows_trace(16);
    out.push(Control {
        name: "aliased M-row regions (attention rows overlap)",
        expect_code: "scratch-alias",
        diagnostics: check_trace(&arena, &steps, &[]),
    });

    // Paged KV: two sequences whose page tables share a page — the defect
    // class the continuous engine's disjointness argument rules out. Both
    // streams would silently corrupt each other's KV rows, so the checker
    // must flag it before any kernel runs.
    out.push(Control {
        name: "two sequences mapped to one page (paged-KV alias)",
        expect_code: "page-alias",
        diagnostics: crate::scratch::check_page_tables(8, &[vec![0, 1, 2], vec![3, 2, 4]]),
    });

    // Collective: one rank skips its layer-0 FF2 all-reduce.
    let m = Mapping3D::new(1, 1, 4);
    let (groups, mut progs) = tp_allreduce_programs(&m, 2, 4096);
    progs.get_mut(&2).unwrap().remove(1);
    out.push(Control {
        name: "unmatched collective (rank 2 skips an all-reduce)",
        expect_code: "collective-mismatch",
        diagnostics: check_programs(&groups, &progs),
    });

    // Collective: the same defect must also be a deadlock under rendezvous.
    out.push(Control {
        name: "deadlock from skipped all-reduce",
        expect_code: "deadlock",
        diagnostics: check_programs(&groups, &progs),
    });

    // Collective: the executed TP engine with one barrier crossing missing
    // (rank 1 races past the reduce-scatter/all-gather fence).
    let (groups, mut progs) = tp_exec_allreduce_programs(4, 2, 512);
    let victim = progs.get_mut(&1).unwrap();
    let idx = victim
        .iter()
        .position(|op| matches!(op, Op::Coll { tag, .. } if tag == "layer0.attn_out.reduced"))
        .expect("barrier op present");
    victim.remove(idx);
    out.push(Control {
        name: "missing barrier in shmem all-reduce (rank 1 skips the fence)",
        expect_code: "deadlock",
        diagnostics: check_programs(&groups, &progs),
    });

    // Pipeline: a cyclic dependency graph.
    let cyclic = DiGraph { n: 4, edges: vec![(0, 1), (1, 2), (2, 0), (2, 3)] };
    let diag = find_cycle(&cyclic)
        .map(|cyc| {
            vec![Diagnostic::new(
                Pass::Collective,
                "pipeline-cycle",
                "seeded digraph",
                format!("dependency cycle through tasks {cyc:?}"),
            )]
        })
        .unwrap_or_default();
    out.push(Control {
        name: "cyclic pipeline task graph",
        expect_code: "pipeline-cycle",
        diagnostics: diag,
    });

    // Locks: the canonical AB/BA inversion must be reported as a cycle.
    {
        use crate::locks::{check_lock_order, LockOp::*, ThreadModel};
        let threads = vec![
            ThreadModel::new("ab", vec![Acquire(0), Acquire(1), Release(1), Release(0)]),
            ThreadModel::new("ba", vec![Acquire(1), Acquire(0), Release(0), Release(1)]),
        ];
        out.push(Control {
            name: "AB/BA lock inversion (two-lock deadlock)",
            expect_code: "lock-cycle",
            diagnostics: check_lock_order(2, &threads),
        });
    }

    // Audit: an unsafe block with no SAFETY comment.
    out.push(Control {
        name: "undocumented unsafe block",
        expect_code: "missing-safety-comment",
        diagnostics: crate::audit::scan_unsafe(
            "seeded.rs",
            "fn f(x: &[f32]) -> f32 {\n    unsafe { *x.get_unchecked(0) }\n}\n",
        ),
    });

    // Exit modelling: a rank dying mid-schedule must surface as a *typed*
    // abort on every survivor (the timeout path), not a hang.
    let (_, progs) = tp_exec_allreduce_programs(2, 1, 512);
    out.push(Control {
        name: "rank exit mid-schedule (survivors abort typed)",
        expect_code: "collective-abort",
        diagnostics: simulate_rendezvous_with_exits(&progs, &ExitPlan::from([(1usize, 3)])),
    });

    // Exit modelling, p2p edge: a receiver stranded by a dead sender must
    // time out typed as well.
    let mut progs = Programs::new();
    progs.insert(0, vec![Op::Recv { from: 1, bytes: 8, tag: "act".into() }]);
    progs.insert(1, vec![Op::Send { to: 0, bytes: 8, tag: "act".into() }]);
    out.push(Control {
        name: "recv from exited sender (typed timeout)",
        expect_code: "collective-abort",
        diagnostics: simulate_rendezvous_with_exits(&progs, &ExitPlan::from([(1usize, 0)])),
    });

    // Recovery protocol: a recovery that replays a victim without first
    // releasing its poisoned pages would double-reserve (leak the old
    // pages and break the replay-fits-by-construction argument); the
    // recovery checker must flag the missing release.
    {
        use crate::runtime::{check_recovery_program, RecoveryOp};
        let bad = vec![
            RecoveryOp::Fault { slots: vec![0, 1] },
            RecoveryOp::Release { slot: 0 },
            RecoveryOp::Replay { slot: 0 },
            // Slot 1 replayed while still holding its poisoned pages.
            RecoveryOp::Replay { slot: 1 },
        ];
        out.push(Control {
            name: "recovery replays without releasing poisoned pages",
            expect_code: "replay-page-leak",
            diagnostics: check_recovery_program(2, &bad),
        });
    }

    // Prefetch protocol: a decode loop that acquires a weight panel before
    // its fetch completed would compute on absent weights — the streaming
    // offload checker must flag the use-before-resident.
    {
        use crate::runtime::{check_prefetch_program, PrefetchOp};
        let bad = vec![PrefetchOp::Acquire { panel: 0 }];
        out.push(Control {
            name: "prefetch acquires a panel before it is resident",
            expect_code: "use-before-resident",
            diagnostics: check_prefetch_program(1, 1, &bad),
        });
    }

    // Exit safety: a genuine deadlock among *survivors* (send/send cycle)
    // must still be reported even when an unrelated rank exits — the abort
    // semantics must not excuse real schedule bugs.
    let mut progs = Programs::new();
    progs.insert(0, vec![Op::Send { to: 1, bytes: 8, tag: "a".into() }]);
    progs.insert(1, vec![Op::Send { to: 0, bytes: 8, tag: "b".into() }]);
    progs.insert(2, vec![Op::Send { to: 3, bytes: 8, tag: "c".into() }]);
    progs.insert(3, vec![Op::Recv { from: 2, bytes: 8, tag: "c".into() }]);
    out.push(Control {
        name: "survivor deadlock not masked by an exit elsewhere",
        expect_code: "deadlock",
        diagnostics: check_exit_safety(&progs, &ExitPlan::from([(2usize, 0)])),
    });

    out
}

/// CI gate: every seeded defect must be detected.
pub fn controls_all_fire(controls: &[Control]) -> bool {
    controls.iter().all(Control::fired)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_is_clean() {
        let r = verify_all();
        assert!(r.is_clean(), "sweep found defects: {:#?}", r.diagnostics);
        // Sanity: the sweep actually covered things.
        assert!(r.ir_plans >= 9 * 2 * 3 * 4, "ir_plans = {}", r.ir_plans);
        // Per Table-I model: prompt + decode + 5 batched M sweeps.
        assert!(r.scratch_traces >= 9 * 7, "scratch_traces = {}", r.scratch_traces);
        assert!(r.collective_programs >= 10);
    }

    #[test]
    fn every_negative_control_fires() {
        let controls = negative_controls();
        assert_eq!(controls.len(), 17);
        for c in &controls {
            assert!(c.fired(), "control `{}` produced {:?}", c.name, c.diagnostics);
        }
        assert!(controls_all_fire(&controls));
    }
}
