//! Property tests tying the static verifier to ground truth:
//!
//! * random op chains — the IR verifier accepts a chain **iff** dynamically
//!   executing it with the real functional kernels succeeds (the dynamic
//!   side checks shapes through `Tensor` constructor asserts and kernel
//!   input asserts, a fully independent implementation);
//! * random fusion partitions — the verifier's fusion verdict agrees with
//!   `fusion::fuse`'s `Result` on the same plan;
//! * random digraphs — `find_cycle` agrees with an independent Kahn
//!   topological sort about whether a cycle exists;
//! * random pipeline specs — the race detector passes every graph
//!   `PipelineSpec::build` can construct, and its rendezvous simulation
//!   drains every lockstep-generated program; deleting any single
//!   collective from any rank's program is always detected.

use proptest::prelude::*;
use dsi_kernels::fusion::{fuse, validate, FusionPlan};
use dsi_kernels::graph::{Axis, OpDesc, OpKind};
use dsi_kernels::{ops, Tensor};
use dsi_sim::hw::DType;
use dsi_verify::collective::{
    check_programs, find_cycle, pp_p2p_programs, simulate_rendezvous, tp_allreduce_programs,
    DiGraph,
};
use dsi_verify::ir::{verify_ops, Shape};
use dsi_parallel::mapping::Mapping3D;
use dsi_parallel::pipeline::{PipelineSchedule, PipelineSpec};

/// Build a random op chain. Dims are declared consistently with the running
/// shape, except where `corrupt` injects a deliberate off-by-`delta` into
/// the op's declared input width — so some chains are legal and some are
/// not, and the test knows nothing about which beyond what the two
/// implementations report.
fn build_chain(rows: usize, c0: usize, codes: &[usize], corrupt: &[usize]) -> Vec<OpDesc> {
    let mut ops_list = Vec::new();
    let mut cols = c0;
    for (i, (&code, &cr)) in codes.iter().zip(corrupt).enumerate() {
        // `cr == 0` corrupts this op's declared input width.
        let delta = usize::from(cr == 0);
        let declared = cols + delta;
        let kind = match code % 3 {
            0 => {
                let n = 1 + (i * 3 + 2) % 5;
                let k = OpKind::Gemm { m: rows, k: declared, n, weight_dtype: DType::Fp32 };
                cols = n;
                k
            }
            1 => OpKind::Elementwise { elems: rows * declared, extra_input: false },
            _ => OpKind::Reduction { rows, cols: declared },
        };
        ops_list.push(OpDesc { name: "op", kind, tile_axes: &[Axis::Token], micro_launches: 1 });
    }
    ops_list
}

/// Execute a chain with the real functional kernels. Every shape check here
/// is a `Tensor`/kernel assert, not a verifier comparison; a mismatched
/// chain panics, which the caller catches.
fn execute_chain(rows: usize, c0: usize, chain: &[OpDesc]) -> Tensor {
    let mut cur = Tensor::randn(&[rows, c0], 1.0, 7);
    for op in chain {
        cur = match op.kind {
            OpKind::Gemm { m, k, n, .. } => {
                // from_vec asserts the running buffer holds exactly m*k.
                let a = Tensor::from_vec(&[m, k], cur.data().to_vec());
                ops::matmul(&a, &Tensor::randn(&[k, n], 0.5, 11))
            }
            OpKind::Elementwise { elems, .. } => {
                let mut x = Tensor::from_vec(&[1, elems], cur.data().to_vec());
                ops::gelu(&mut x);
                x
            }
            OpKind::Reduction { rows, cols } => {
                let x = Tensor::from_vec(&[rows, cols], cur.data().to_vec());
                let ones = Tensor::from_vec(&[cols], vec![1.0; cols]);
                let zeros = Tensor::zeros(&[cols]);
                ops::layernorm(&x, &ones, &zeros, 1e-5)
            }
            _ => unreachable!("chain builder emits Gemm/Elementwise/Reduction only"),
        };
    }
    cur
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn verifier_accepts_iff_dynamic_execution_succeeds(
        rows in 1usize..4,
        c0 in 1usize..7,
        codes in prop::collection::vec(0usize..3, 1..6),
        corrupt in prop::collection::vec(0usize..6, 1..6),
    ) {
        let n = codes.len().min(corrupt.len());
        let chain = build_chain(rows, c0, &codes[..n], &corrupt[..n]);
        let diags = verify_ops(&chain, Some(Shape::new(rows, c0)));
        // Corrupted chains are *supposed* to panic in the kernels; keep the
        // expected panics out of the test output.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let ran = std::panic::catch_unwind(|| execute_chain(rows, c0, &chain));
        std::panic::set_hook(hook);
        prop_assert_eq!(
            diags.is_empty(),
            ran.is_ok(),
            "verifier said {:?} but dynamic execution {}",
            &diags,
            if ran.is_ok() { "succeeded" } else { "panicked" }
        );
    }

    #[test]
    fn fusion_verdict_agrees_with_fuse(
        cuts in prop::collection::vec(0usize..2, 11..12),
        tamper in 0usize..8,
        shift in 1usize..3,
    ) {
        // Random contiguous partition of the 12-op canonical layer...
        let ops = dsi_kernels::graph::transformer_layer_ops(1, 2, 2, 64, 4, DType::Fp16);
        let mut regions = Vec::new();
        let mut lo = 0;
        for (i, &cut) in cuts.iter().enumerate() {
            if cut == 1 {
                regions.push((lo, i + 1));
                lo = i + 1;
            }
        }
        regions.push((lo, 12));
        // ...sometimes tampered into a non-partition.
        if tamper == 0 {
            let last = regions.len() - 1;
            regions[last].1 += shift;
        }
        let plan = FusionPlan { regions };
        let errs = validate(&ops, &plan);
        let fused = fuse(&ops, &plan, DType::Fp16);
        prop_assert_eq!(errs.is_empty(), fused.is_ok(), "validate {:?} vs fuse {:?}", &errs, fused.err());
        if let Err(e) = fused {
            prop_assert_eq!(e, errs[0].clone(), "fuse must fail with the first violation");
        }
    }

    #[test]
    fn find_cycle_agrees_with_kahn(
        n in 1usize..8,
        raw_edges in prop::collection::vec(0usize..64, 0..14),
    ) {
        let edges: Vec<(usize, usize)> =
            raw_edges.iter().map(|&e| ((e / 8) % n, e % n)).collect();
        let g = DiGraph { n, edges: edges.clone() };
        // Independent ground truth: Kahn's algorithm completes iff acyclic.
        let mut indeg = vec![0usize; n];
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &adj[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        let kahn_acyclic = seen == n;
        prop_assert_eq!(
            find_cycle(&g).is_none(),
            kahn_acyclic,
            "find_cycle and Kahn disagree on n={} edges={:?}",
            n,
            &edges
        );
    }

    #[test]
    fn built_pipelines_always_pass_race_detection(
        stages in 1usize..5,
        prompt_mb in 1usize..6,
        gen_mb in 1usize..4,
        gen_tokens in 0usize..5,
        sched in 0usize..2,
    ) {
        let spec = PipelineSpec {
            stages,
            prompt_microbatches: prompt_mb,
            gen_microbatches: gen_mb,
            gen_tokens,
            stage_prompt_time_full: 40e-3,
            stage_gen_time: 2e-3,
            microbatch_overhead: 0.1e-3,
            p2p_time: 0.05e-3,
        };
        let schedule = if sched == 0 {
            PipelineSchedule::TrainingStyle
        } else {
            PipelineSchedule::InferenceQueue
        };
        let d = dsi_verify::collective::check_pipeline(&spec, schedule);
        prop_assert!(d.is_empty(), "spec {:?} flagged: {:?}", &spec, &d);
    }

    #[test]
    fn lockstep_programs_clean_and_any_deletion_detected(
        dp in 1usize..3,
        pp in 1usize..3,
        tp in 2usize..5,
        layers in 1usize..4,
        victim_seed in 0usize..1024,
    ) {
        let m = Mapping3D::new(dp, pp, tp);
        let (groups, progs) = tp_allreduce_programs(&m, layers, 1024);
        prop_assert!(check_programs(&groups, &progs).is_empty());
        // The pipeline p2p program of the same mapping must rendezvous.
        let p2p = pp_p2p_programs(&m, 2, 512);
        prop_assert!(simulate_rendezvous(&p2p).is_empty());
        // Drop one collective from one rank: always detected.
        let mut broken = progs.clone();
        let victim = victim_seed % m.world_size();
        let ops = broken.get_mut(&victim).unwrap();
        let drop_at = (victim_seed / 7) % ops.len();
        ops.remove(drop_at);
        let d = check_programs(&groups, &broken);
        prop_assert!(
            d.iter().any(|x| x.code == "collective-mismatch" || x.code == "deadlock"),
            "deleting op {} of rank {} went undetected",
            drop_at,
            victim
        );
    }
}
