//! Workspace task runner (the cargo-xtask pattern): plain `cargo run`
//! binaries invoked through the `cargo xtask` alias in `.cargo/config.toml`,
//! so CI and developers share one entry point with no extra tooling.
//!
//! Subcommands:
//! * `verify` — run the full static sweep (`dsi_verify::sweep::verify_all`)
//!   over every zoo model × figure configuration, then the negative
//!   controls. Exit code 1 if the sweep finds a defect **or** any seeded
//!   defect goes undetected.
//! * `unsafe-audit` — walk every crate's sources and enforce the unsafe
//!   hygiene contract (`// SAFETY:` on blocks, `# Safety` on fns).
//! * `all` — both.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "verify" => run_verify(),
        "unsafe-audit" => run_audit(),
        "all" => {
            let v = run_verify();
            let a = run_audit();
            if v == ExitCode::SUCCESS && a == ExitCode::SUCCESS {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown xtask `{other}`; available: verify, unsafe-audit, all");
            ExitCode::FAILURE
        }
    }
}

fn run_verify() -> ExitCode {
    let report = dsi_verify::sweep::verify_all();
    println!(
        "xtask verify: {} IR plans, {} scratch traces, {} collective programs checked",
        report.ir_plans, report.scratch_traces, report.collective_programs
    );
    let mut ok = true;
    if !report.is_clean() {
        ok = false;
        eprintln!("sweep found {} defect(s):", report.diagnostics.len());
        for d in &report.diagnostics {
            eprintln!("  {d}");
        }
    }
    let controls = dsi_verify::sweep::negative_controls();
    for c in &controls {
        if c.fired() {
            println!("  control fired: {}", c.name);
        } else {
            ok = false;
            eprintln!(
                "  CONTROL DEAD: `{}` expected `{}`, got {:?}",
                c.name, c.expect_code, c.diagnostics
            );
        }
    }
    // End-to-end tracer gate: run a short continuous serve with tracing
    // forced on and diff the live scheduler's lock/phase trace against the
    // verified model — the one check that cannot go stale against the
    // executed code.
    let trace_diags = dsi_serve::live_trace_check();
    if trace_diags.is_empty() {
        println!("  live scheduler trace: clean against the lock model");
    } else {
        ok = false;
        eprintln!("live scheduler trace diverged from the model:");
        for d in &trace_diags {
            eprintln!("  {d}");
        }
    }
    if ok {
        println!("xtask verify: clean ({} negative controls fired)", controls.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_audit() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src"] {
        collect_rs(&root.join(dir), &mut files);
    }
    files.sort();
    let mut diags = Vec::new();
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask unsafe-audit: cannot read {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = f.strip_prefix(&root).unwrap_or(f);
        diags.extend(dsi_verify::audit::scan_unsafe(&rel.display().to_string(), &text));
    }
    println!("xtask unsafe-audit: {} files scanned", files.len());
    if diags.is_empty() {
        println!("xtask unsafe-audit: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("unsafe hygiene violations:");
        for d in &diags {
            eprintln!("  {d}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively collect `.rs` files, skipping `target/` and `third_party`
/// vendor code (vendored subsets keep their upstream style).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != "third_party" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
