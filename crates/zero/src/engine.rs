//! The ZeRO-Inference streaming engine **cost model** (Sec. VI) — the
//! analytical baseline. The *executed* tier lives in [`crate::offload`]
//! (fault-hardened mmap store) and `dsi_core::streamed` (the engine that
//! serves from it); this module predicts bandwidth/overlap numbers that the
//! executed path can be checked against.
//!
//! A prompt forward pass streams the model layer by layer: fetch layer `l`
//! from its tier (NVMe/DRAM) while computing layer `l−1` (prefetching,
//! Sec. VI-B), with GPU memory budgeted between a handful of layer buffers
//! and as large a batch of activations as fits ("ZeRO-Inference's strategy
//! to utilize GPU memory to support large batch sizes results in high
//! performance inference", Sec. VI-A).
//!
//! Multi-GPU (Fig. 9c): "the aggregate PCI-e bandwidth is used ... by having
//! each GPU only fetch a partition of the layer and then aggregating
//! partitions over the much faster GPU-GPU interconnect"; each GPU runs its
//! own batch shard (data parallel), so throughput scales with GPU count as
//! long as the source tier keeps up.

use crate::tiers::{buffer_bytes, place_weights, Tier};
use dsi_kernels::cost::gemm_policy;
use dsi_model::config::GptConfig;
use dsi_sim::engine::{Resource, TaskGraph};
use dsi_sim::hw::{DType, NodeSpec};
use serde::Serialize;

/// A ZeRO-Inference deployment of one model on one node.
///
/// ```
/// use dsi_zero::engine::ZeroInference;
/// use dsi_model::zoo;
/// use dsi_sim::hw::NodeSpec;
/// // 530B on one A6000 workstation: streams from NVMe.
/// let z = ZeroInference::new(
///     zoo::dense_by_name("LM-530B").unwrap(),
///     NodeSpec::lambda_a6000(),
///     1,
/// );
/// let report = z.run_max_batch().unwrap();
/// assert!(report.flops_per_gpu > 0.45 * 158.4e12); // >45% of peak
/// ```
#[derive(Debug, Clone)]
pub struct ZeroInference {
    pub model: GptConfig,
    pub node: NodeSpec,
    /// GPUs used (data-parallel batch shards + partitioned fetch).
    pub gpus: usize,
    pub dtype: DType,
    /// Layers fetched ahead of use (Sec. VI-B); 0 disables overlap.
    pub prefetch: usize,
    /// Prompt length of the throughput workload (the paper uses long
    /// prompts, e.g. 2048, for the compute-throughput measurements).
    pub seq: usize,
}

/// Outcome of one streamed forward pass.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ZeroReport {
    /// Weight tier the run streams from.
    pub tier: Tier,
    /// Batch size used.
    pub batch: usize,
    /// End-to-end time of the forward pass, seconds.
    pub time: f64,
    /// Achieved compute throughput per GPU, FLOP/s.
    pub flops_per_gpu: f64,
    /// Fraction of the pass spent with compute stalled on fetches.
    pub stall_fraction: f64,
}

impl ZeroInference {
    pub fn new(model: GptConfig, node: NodeSpec, gpus: usize) -> Self {
        assert!(gpus >= 1 && gpus <= node.gpus_per_node);
        ZeroInference {
            model,
            node,
            gpus,
            dtype: DType::Fp16,
            prefetch: 2,
            seq: 2048,
        }
    }

    /// Weight tier ZeRO-Inference streams from, or `None` if the node cannot
    /// hold the model. The design *always* offloads — "pins the model
    /// weights either in DRAM (if large enough) or NVMe" (Sec. VI-A) — even
    /// when the model would fit in GPU memory, because freed HBM buys batch
    /// size.
    pub fn tier(&self) -> Option<Tier> {
        match place_weights(&self.model, &self.node, self.dtype) {
            Some(Tier::Gpu) | Some(Tier::Dram) => Some(Tier::Dram),
            other => other,
        }
    }

    /// Largest batch (global, across GPUs) that fits: GPU memory minus
    /// streaming buffers holds the per-sequence activation working set.
    pub fn max_batch(&self) -> usize {
        let reserve = 2e9; // allocator/workspace slack per GPU
        let free_per_gpu = self.node.gpu.mem_bytes as f64
            - buffer_bytes(&self.model, self.dtype, self.prefetch)
            - reserve;
        let per_seq = self.model.prompt_activation_bytes_per_seq(self.seq, self.dtype);
        let per_gpu = (free_per_gpu / per_seq).floor().max(1.0) as usize;
        per_gpu * self.gpus
    }

    /// Per-layer fetch time with `gpus` pulling partitions in parallel:
    /// bottleneck of the tier's aggregate read bandwidth and the summed PCIe
    /// links, plus the intra-node all-gather to reassemble the layer.
    fn layer_fetch_time(&self, tier: Tier) -> f64 {
        let layer_bytes = self.model.layer_weight_bytes(self.dtype);
        let pcie_agg =
            self.gpus as f64 * self.node.pcie_bw_per_gpu(self.gpus).min(tier.read_bw(&self.node));
        let source_bw = match tier {
            Tier::Gpu => return 0.0,
            Tier::Dram => self.node.dram_bw,
            Tier::Nvme => self.node.nvme_read_bw,
        };
        let fetch = layer_bytes / pcie_agg.min(source_bw);
        let allgather = if self.gpus > 1 {
            // Each GPU gathers the other partitions over NVLink/NVSwitch.
            (self.gpus as f64 - 1.0) / self.gpus as f64 * layer_bytes / self.node.intra_link.bw
        } else {
            0.0
        };
        fetch + allgather
    }

    /// Compute time of one layer over this GPU's batch shard.
    fn layer_compute_time(&self, batch_per_gpu: usize) -> f64 {
        let tokens = (batch_per_gpu * self.seq) as f64;
        let gemm_flops = 2.0 * self.model.layer_params() * tokens;
        let attn_flops =
            self.model.attention_flops(batch_per_gpu as f64, self.seq as f64, self.seq as f64 / 2.0)
                / self.model.layers as f64;
        let eff = gemm_policy::end_to_end_efficiency(tokens, self.model.hidden);
        let t_compute = (gemm_flops + attn_flops) / (self.node.gpu.peak_flops(self.dtype) * eff);
        // Weight read out of HBM (only binding at tiny batches).
        let t_mem = self.model.layer_weight_bytes(self.dtype) / (self.node.gpu.mem_bw * 0.8);
        t_compute.max(t_mem)
    }

    /// Run one streamed forward pass at `batch` (global). Returns `None` if
    /// the model doesn't fit on the node at all.
    pub fn run(&self, batch: usize) -> Option<ZeroReport> {
        let tier = self.tier()?;
        let batch_per_gpu = batch.div_ceil(self.gpus).max(1);
        let n_layers = self.model.layers;
        let t_fetch = self.layer_fetch_time(tier);
        let t_compute = self.layer_compute_time(batch_per_gpu);

        // Stream the layers through the discrete-event engine. All GPUs act
        // in lockstep (same layer at a time); model GPU 0's timeline with the
        // aggregate fetch path as its copy stream.
        let mut g = TaskGraph::new();
        let mut fetch_tasks = Vec::with_capacity(n_layers);
        let mut compute_tasks: Vec<usize> = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let mut fdeps = Vec::new();
            if let Some(&prev) = fetch_tasks.last() {
                fdeps.push(prev);
            }
            // Buffer limit: fetch l may start only after compute l-1-prefetch
            // freed its buffer.
            if self.prefetch < l {
                fdeps.push(compute_tasks[l - 1 - self.prefetch]);
            }
            let f = g.add(format!("fetch l{l}"), Resource::CopyH2D(0), t_fetch, &fdeps);
            fetch_tasks.push(f);
            let mut cdeps = vec![f];
            if let Some(&prev) = compute_tasks.last() {
                cdeps.push(prev);
            }
            let c = g.add(format!("compute l{l}"), Resource::Compute(0), t_compute, &cdeps);
            compute_tasks.push(c);
        }
        let sched = g.simulate();
        debug_assert!(sched.validate(&g).is_ok());

        let time = sched.makespan;
        let useful_flops = self.model.forward_flops((batch_per_gpu * self.seq) as f64)
            + self.model.attention_flops(batch_per_gpu as f64, self.seq as f64, self.seq as f64 / 2.0);
        let compute_total = n_layers as f64 * t_compute;
        Some(ZeroReport {
            tier,
            batch,
            time,
            flops_per_gpu: useful_flops / time,
            stall_fraction: ((time - compute_total) / time).max(0.0),
        })
    }

    /// Run at the largest batch that fits (the paper's throughput
    /// methodology for resource-constrained systems, Sec. VII-A3).
    pub fn run_max_batch(&self) -> Option<ZeroReport> {
        self.run(self.max_batch())
    }

    /// Token-*generation* throughput at `batch`: every generated token
    /// streams the whole model through the GPU once, so the step time is
    /// pinned to the tier bandwidth and throughput grows almost linearly
    /// with batch — the reason ZeRO-Inference is an *offline/throughput*
    /// design ("for applications that are less latency sensitive", Sec. VI).
    /// Returns `(step seconds, tokens/s)`.
    pub fn token_gen_throughput(&self, batch: usize) -> Option<(f64, f64)> {
        let tier = self.tier()?;
        let t_fetch = self.layer_fetch_time(tier);
        let per_gpu = batch.div_ceil(self.gpus).max(1);
        // One token per sequence: GEMM flops 2·params·batch per layer, plus
        // the HBM re-read of the resident layer.
        let gemm = 2.0 * self.model.layer_params() * per_gpu as f64;
        let eff = gemm_policy::end_to_end_efficiency(per_gpu as f64, self.model.hidden);
        let t_compute = (gemm / (self.node.gpu.peak_flops(self.dtype) * eff)).max(
            self.model.layer_weight_bytes(self.dtype) / (self.node.gpu.mem_bw * 0.8),
        );
        let step = self.model.layers as f64 * t_fetch.max(t_compute);
        Some((step, batch as f64 / step))
    }

    /// GPU-only comparator: weights resident in HBM, batch limited to what
    /// fits beside them. Eager frameworks lose a large part of the residue
    /// to fragmentation, cuDNN workspace, and resident KV buffers; we charge
    /// a 30% usable fraction, consistent with the batch sizes HuggingFace
    /// serving achieved on 2022 stacks. Returns `None` if the model doesn't
    /// fit in one GPU.
    pub fn gpu_only(&self) -> Option<ZeroReport> {
        let w = self.model.weight_bytes(self.dtype);
        let free = (self.node.gpu.mem_bytes as f64 - w) * 0.30;
        if free <= 0.0 {
            return None;
        }
        let per_seq = self.model.prompt_activation_bytes_per_seq(self.seq, self.dtype);
        let batch = (free / per_seq).floor() as usize;
        if batch == 0 {
            return None;
        }
        let t_compute = self.layer_compute_time(batch);
        let time = self.model.layers as f64 * t_compute;
        let useful_flops = self.model.forward_flops((batch * self.seq) as f64)
            + self.model.attention_flops(batch as f64, self.seq as f64, self.seq as f64 / 2.0);
        Some(ZeroReport {
            tier: Tier::Gpu,
            batch,
            time,
            flops_per_gpu: useful_flops / time,
            stall_fraction: 0.0,
        })
    }

    /// CPU-only comparator: FP32 weights in DRAM, CPU compute. Returns
    /// `None` if DRAM can't hold the FP32 model.
    pub fn cpu_only(&self, batch: usize) -> Option<ZeroReport> {
        if !crate::tiers::cpu_only_feasible(&self.model, &self.node) {
            return None;
        }
        let tokens = (batch * self.seq) as f64;
        let flops = self.model.forward_flops(tokens);
        let t_compute = flops / self.node.cpu_flops;
        let t_mem = self.model.weight_bytes(DType::Fp32) / self.node.dram_bw;
        let time = t_compute.max(t_mem);
        Some(ZeroReport {
            tier: Tier::Dram,
            batch,
            time,
            flops_per_gpu: flops / time,
            stall_fraction: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::dense_by_name;

    fn lambda(model: &str) -> ZeroInference {
        ZeroInference::new(
            dense_by_name(model).unwrap(),
            NodeSpec::lambda_a6000(),
            1,
        )
    }

    #[test]
    fn mt530b_on_single_a6000_over_half_peak() {
        // Headline: 530B on one A6000 at >50% of the 158.4 TFLOPS peak
        // (84 TFLOPS reported; Sec. VII-D2).
        let z = lambda("LM-530B");
        let r = z.run_max_batch().expect("530B must fit via NVMe");
        assert_eq!(r.tier, Tier::Nvme);
        let frac = r.flops_per_gpu / 158.4e12;
        assert!(frac > 0.45 && frac < 0.62, "achieved {:.0}% of peak", frac * 100.0);
        assert!(
            r.flops_per_gpu > 70e12 && r.flops_per_gpu < 100e12,
            "achieved {:.1} TFLOPS",
            r.flops_per_gpu / 1e12
        );
    }

    #[test]
    fn throughput_rises_with_batch() {
        // Fig. 9(a): throughput grows with batch size — steeply while the
        // batch's compute cannot yet hide the weight streaming, then
        // saturating.
        let z = lambda("GPT-NeoX-20B");
        let t1 = z.run(1).unwrap().flops_per_gpu;
        let t8 = z.run(8).unwrap().flops_per_gpu;
        let tmax = z.run_max_batch().unwrap().flops_per_gpu;
        assert!(t8 > 1.2 * t1, "t8 {t8:.2e} t1 {t1:.2e}");
        assert!(tmax > t8);
        // NVMe-resident 530B: the rise is dramatic (fetch dominates at small
        // batch).
        let z530 = lambda("LM-530B");
        let s1 = z530.run(1).unwrap().flops_per_gpu;
        let s8 = z530.run(8).unwrap().flops_per_gpu;
        assert!(s8 > 4.0 * s1, "530B rise {:.1}x", s8 / s1);
    }

    #[test]
    fn zero_beats_gpu_only_for_fitting_model() {
        // Sec. VII-D2: "even for models that fit in single GPU memory, it
        // offers over 50% better throughput than the GPU-only solution".
        let z = lambda("GPT-NeoX-20B");
        let zero = z.run_max_batch().unwrap();
        let gpu_only = z.gpu_only().unwrap();
        assert!(zero.batch > 3 * gpu_only.batch, "batches {} vs {}", zero.batch, gpu_only.batch);
        let gain = zero.flops_per_gpu / gpu_only.flops_per_gpu;
        assert!(gain > 1.25, "gain only {gain:.2}x");
    }

    #[test]
    fn zero_beats_cpu_only_by_25x() {
        // "for models that fit in CPU memory, it offers over 25× higher
        // throughput than the CPU-only solution".
        let z = lambda("GPT-50B");
        let zero = z.run_max_batch().unwrap();
        let cpu = z.cpu_only(zero.batch).unwrap();
        let gain = zero.flops_per_gpu / cpu.flops_per_gpu;
        assert!(gain > 25.0, "gain only {gain:.1}x");
    }

    #[test]
    fn gpu_only_cannot_serve_50b() {
        let z = lambda("GPT-50B");
        assert!(z.gpu_only().is_none());
        assert!(z.run(1).is_some()); // but ZeRO-Inference can (DRAM tier)
        assert_eq!(z.tier(), Some(Tier::Dram));
    }

    #[test]
    fn prefetch_improves_small_batch_throughput() {
        // Fig. 10(c): prefetching helps most at small batch, where compute
        // cannot hide the fetch.
        let mut z = lambda("GPT-50B");
        z.prefetch = 0;
        let no_pf = z.run(4).unwrap();
        z.prefetch = 2;
        let pf = z.run(4).unwrap();
        assert!(pf.time < no_pf.time, "pf {} no_pf {}", pf.time, no_pf.time);
        // At max batch the benefit shrinks (compute dominates).
        z.prefetch = 0;
        let no_pf_big = z.run(64).unwrap();
        z.prefetch = 2;
        let pf_big = z.run(64).unwrap();
        let gain_small = no_pf.time / pf.time;
        let gain_big = no_pf_big.time / pf_big.time;
        assert!(gain_small > gain_big, "small {gain_small:.3} big {gain_big:.3}");
    }

    #[test]
    fn multi_gpu_scaling_near_linear() {
        // Fig. 9(c): GPT-50B on a DGX-2, 1 -> 16 V100s, near-linear scaling
        // via aggregate PCIe bandwidth.
        let node = NodeSpec::dgx2_v100();
        let model = dense_by_name("GPT-50B").unwrap();
        let z1 = ZeroInference::new(model.clone(), node.clone(), 1);
        let z16 = ZeroInference::new(model, node, 16);
        let b1 = z1.max_batch();
        let r1 = z1.run(b1).unwrap();
        let r16 = z16.run(b1 * 16).unwrap();
        // Total throughput = per-GPU flops × gpus; efficiency vs 16×.
        let eff = (r16.flops_per_gpu * 16.0) / (r1.flops_per_gpu * 16.0);
        assert!(eff > 0.85, "16-GPU scaling efficiency {eff:.2}");
        // Per-GPU throughput ~53% of V100 peak (67/125 reported).
        let frac = r16.flops_per_gpu / 125e12;
        assert!(frac > 0.4 && frac < 0.62, "per-GPU fraction {frac:.2}");
    }

    #[test]
    fn single_v100_50b_matches_67_tflops_scale() {
        let z = ZeroInference::new(
            dense_by_name("GPT-50B").unwrap(),
            NodeSpec::dgx2_v100(),
            1,
        );
        let r = z.run_max_batch().unwrap();
        assert!(
            r.flops_per_gpu > 50e12 && r.flops_per_gpu < 80e12,
            "got {:.1} TFLOPS",
            r.flops_per_gpu / 1e12
        );
    }

    #[test]
    fn token_generation_is_fetch_bound_and_batch_hungry() {
        // 530B from NVMe: a generation step can't beat the model-read time,
        // and tokens/s scales ~linearly with batch in that regime.
        let z = lambda("LM-530B");
        let (step, tps1) = z.token_gen_throughput(1).unwrap();
        let min_step = z.model.weight_bytes(z.dtype) / z.node.nvme_read_bw;
        assert!(step >= min_step * 0.99, "step {step} floor {min_step}");
        let (_, tps16) = z.token_gen_throughput(16).unwrap();
        assert!(
            tps16 > 12.0 * tps1,
            "batch 16 should ~16x tokens/s: {tps16} vs {tps1}"
        );
    }

    #[test]
    fn stall_fraction_bounded() {
        let z = lambda("LM-530B");
        let r = z.run_max_batch().unwrap();
        assert!(r.stall_fraction < 0.3, "stall {:.2}", r.stall_fraction);
        assert!((0.0..=1.0).contains(&r.stall_fraction));
    }
}
