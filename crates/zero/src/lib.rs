//! # dsi-zero — ZeRO-Inference: heterogeneous GPU+CPU+NVMe inference
//! (Sec. VI)
//!
//! ZeRO-Inference "pins the model weights either in DRAM (if large enough)
//! or NVMe, and streams each layer into GPU memory for computation when
//! needed", spending GPU memory on large batches instead of on weights.
//! This crate implements:
//!
//! * [`tiers`] — placement: where do the weights live (GPU / DRAM / NVMe),
//!   and what is the largest model each strategy (GPU-only, CPU-only,
//!   ZeRO-Inference) can serve on a node — the 25×/10× model-scale claims of
//!   Sec. VII-D1.
//! * [`engine`] — the **analytical baseline**: per-layer fetch tasks
//!   (bottlenecked by NVMe or PCIe), prefetch `k` layers ahead (Sec. VI-B),
//!   multi-GPU partitioned fetch with an intra-node all-gather, and the
//!   max-batch solver that converts freed GPU memory into throughput.
//!   Schedules run on the discrete-event engine so overlap is simulated,
//!   not assumed.
//! * [`offload`] — the **executed** tiered weight store: a memory-mapped,
//!   per-panel-checksummed v2 weight file served under a resident-byte
//!   budget by a prefetch worker, with seeded I/O fault injection, bounded
//!   re-reads, clock-measured fetch deadlines, and graceful degradation to
//!   synchronous fetch when the prefetcher dies.
//!
//! `dsi_core::streamed::StreamedEngine` is the decode loop over the store
//! (it lives in `dsi-core` because the `BatchEngine` trait does), and
//! `dsi-serve` hosts it in both single-flight and continuous modes.

pub mod engine;
pub mod offload;
pub mod store;
pub mod tiers;

pub use engine::{ZeroInference, ZeroReport};
pub use offload::{OffloadConfig, OffloadError, OffloadStats, OffloadStore, ResidentGroup};
pub use store::{streamed_forward, StreamingStore};
pub use tiers::{cpu_only_feasible, gpu_only_feasible, place_weights, Tier};
