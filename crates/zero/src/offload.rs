//! The executed tiered weight store: memory-mapped panel file, bounded
//! resident cache, prefetch worker — ZeRO-Inference's "pin the weights in a
//! big slow tier, stream layers into compute memory" (Sec. VI), made real
//! and fault-hardened.
//!
//! [`OffloadStore`] opens a v2 `model::io` weight file (version header +
//! per-panel CRC32, see `dsi_model::io`), keeps the small always-needed
//! group resident (embeddings + final layer-norm + the packed logits
//! operand), and serves transformer layers as [`PackedLayer`] panels on
//! demand under a **resident-byte budget**: at most
//! `resident_budget_bytes` of packed layer panels live in memory at once,
//! so a model whose weight file dwarfs the budget still decodes — the
//! `StreamedEngine` built on top is token-identical to the fully-resident
//! fast path because both drive the same `dsi_model::fast` stage functions.
//!
//! ## Concurrency shape
//!
//! One background worker owns the prefetch queue. The decode thread calls
//! [`OffloadStore::acquire`] for layer `l` and immediately
//! [`OffloadStore::prefetch_ahead`] for `l+1`, so the worker reads,
//! checksums, and packs upcoming panels while the GEMMs of the current
//! layer run — the overlap the analytical model in [`crate::engine`] costs
//! out. Panels are handed out as `Arc`s; a panel still held by the decode
//! loop is *pinned* (strong count > 1) and never evicted. Eviction picks
//! the unpinned panel with the **furthest next use under the cyclic layer
//! schedule** (decode touches layers `0..L` round-robin, which is LRU's
//! pathological case; distance-to-next-use is Belady-optimal here).
//!
//! ## Fault surface
//!
//! Every tier read is a seam for `dsi_sim::fault::IoFaultInjector`:
//! * **slow reads** stall the worker; the decode thread's `acquire` carries
//!   a fetch deadline measured on the injected [`Clock`] and fails typed
//!   (`FetchTimeout` — `Timeout` breaker class) instead of wedging;
//! * **short reads** and **corrupt panels** are detected (byte count /
//!   CRC32 against the panel directory) and re-read with backoff up to
//!   `read_retries` times before the typed `Corruption`-class error;
//! * **failed open / handle loss** kills the prefetch worker; the store
//!   degrades to synchronous demand fetch on the decode thread — decode
//!   slows, it never wedges and never returns wrong bytes.
//!
//! The error `Display` strings are written to land in the right
//! `dsi_core::batch::FaultClass` bins, which is how a dying weight tier
//! trips the serving runtime's per-class circuit breakers.

use dsi_kernels::blocked::{PackedB, PanelWeights};
use dsi_kernels::tensor::Tensor;
use dsi_model::config::GptConfig;
use dsi_model::fast::PackedLayer;
use dsi_model::io::{self, IoError, PanelDirectory};
use dsi_sim::fault::{apply_stall, IoFaultInjector, IoFaultKind};
use dsi_sim::Clock;
use serde::Serialize;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Typed failures of the tiered weight store. The `Display` strings are
/// deliberate: `dsi_core::batch::FaultClass::classify` bins faults by
/// keyword, so a fetch timeout says "timed out" (`Timeout` breaker), a
/// checksum failure says "corrupt" (`Corruption`), and a budget failure
/// says "memory" (`Memory`).
#[derive(Debug)]
pub enum OffloadError {
    /// The weight file could not be opened / mapped.
    FailedOpen { path: String, detail: String },
    /// The file is structurally bad (bad magic/version/shape/checksum at
    /// open time).
    Io(IoError),
    /// A layer panel failed its CRC32 against the directory on every
    /// attempt.
    ChecksumFailed { layer: usize, attempts: usize },
    /// A layer panel read came back short on every attempt.
    ShortReadFailed { layer: usize, attempts: usize },
    /// The reader lost the weight-file handle mid-read (injected
    /// `FailOpen` at a read site): whoever was reading dies cleanly.
    HandleLost { layer: usize },
    /// The fetch deadline elapsed (on the configured clock) before the
    /// panel became resident.
    FetchTimeout { layer: usize, waited_ms: u64 },
    /// The resident budget cannot hold even one layer panel.
    BudgetExhausted { need: usize, budget: usize },
}

impl std::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffloadError::FailedOpen { path, detail } => {
                write!(f, "offload open failed: {path}: {detail}")
            }
            OffloadError::Io(e) => write!(f, "offload weight file: {e}"),
            OffloadError::ChecksumFailed { layer, attempts } => {
                write!(f, "layer {layer} panel corrupt after {attempts} reads (checksum mismatch)")
            }
            OffloadError::ShortReadFailed { layer, attempts } => {
                write!(f, "layer {layer} panel corrupt after {attempts} reads (short reads)")
            }
            OffloadError::HandleLost { layer } => {
                write!(f, "offload handle lost reading layer {layer} panel")
            }
            OffloadError::FetchTimeout { layer, waited_ms } => {
                write!(f, "layer {layer} panel fetch timed out after {waited_ms} ms")
            }
            OffloadError::BudgetExhausted { need, budget } => {
                write!(f, "offload memory budget {budget} B cannot hold a {need} B layer panel")
            }
        }
    }
}

impl std::error::Error for OffloadError {}

impl From<IoError> for OffloadError {
    fn from(e: IoError) -> Self {
        OffloadError::Io(e)
    }
}

/// Store configuration. `Default` is an unbounded resident budget with a
/// depth-2 prefetch and generous wall-clock deadlines.
#[derive(Debug, Clone)]
pub struct OffloadConfig {
    /// Byte budget for resident **layer panels** (packed execution layout).
    /// The always-resident group (embeddings, final layer-norm, packed
    /// logits operand) is excluded: it is the part ZeRO-Inference never
    /// streams.
    pub resident_budget_bytes: usize,
    /// How many layer panels to fetch ahead of the decode loop. Clamped at
    /// open time to what the budget can hold beyond the in-use panel.
    pub prefetch_depth: usize,
    /// Deadline for one `acquire`, measured on `clock`.
    pub fetch_timeout: Duration,
    /// Bounded re-reads after a short or checksum-failing read.
    pub read_retries: usize,
    /// Wall-clock backoff between re-reads (multiplied by the attempt
    /// number).
    pub retry_backoff: Duration,
    /// Deadline time source (manual in chaos tests, wall in production).
    pub clock: Clock,
    /// Seeded I/O fault injection; `None` in production.
    pub faults: Option<Arc<IoFaultInjector>>,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            resident_budget_bytes: usize::MAX,
            prefetch_depth: 2,
            fetch_timeout: Duration::from_secs(10),
            read_retries: 2,
            retry_backoff: Duration::from_millis(1),
            clock: Clock::wall(),
            faults: None,
        }
    }
}

/// Counters for benches and the chaos suite's books (all monotonic).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct OffloadStats {
    /// `acquire` calls answered straight from the resident cache.
    pub hits: u64,
    /// `acquire` calls that had to wait for (or perform) a fetch.
    pub demand_fetches: u64,
    /// Panels fetched by the background worker.
    pub prefetch_fetches: u64,
    /// Panels fetched synchronously on the decode thread because the
    /// prefetcher was dead.
    pub sync_fallbacks: u64,
    /// Panels evicted to fit a newcomer under the budget.
    pub evictions: u64,
    /// Prefetched panels dropped because nothing evictable made room.
    pub prefetch_dropped: u64,
    /// Fetches that ended in a typed error.
    pub fetch_errors: u64,
    /// Re-reads forced by short reads.
    pub short_read_retries: u64,
    /// Re-reads forced by checksum mismatches.
    pub checksum_retries: u64,
    /// Reads that hit an injected stall.
    pub slow_reads: u64,
    /// Wall milliseconds spent in injected stalls.
    pub stall_ms: u64,
    /// Payload bytes read from the backing tier (including re-reads).
    pub bytes_read: u64,
    /// High-water mark of resident layer-panel bytes.
    pub peak_resident_bytes: usize,
}

// ---------------------------------------------------------------------------
// Backing: the mapped (or heap-loaded) weight file.
// ---------------------------------------------------------------------------

/// The weight file's bytes. On x86-64 Linux this is a read-only private
/// `mmap` — the OS pages panels in and out on demand, which is what lets
/// the *file* exceed physical memory while the store's own budget bounds
/// the packed panels. Elsewhere it degrades to a heap load (correct, but
/// the bigger-than-RAM property is lost).
enum Backing {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped { ptr: *const u8, len: usize },
    Heap(Vec<u8>),
}

// SAFETY: the mapped region is PROT_READ + MAP_PRIVATE over a file this
// process opened; it is never written through `ptr` and stays valid until
// `Drop` unmaps it. Shared `&[u8]` access from several threads is sound.
unsafe impl Send for Backing {}
// SAFETY: as above — the region is immutable for the mapping's lifetime.
unsafe impl Sync for Backing {}

impl Backing {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn map(path: &Path) -> std::io::Result<Backing> {
        use std::os::fd::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Backing::Heap(Vec::new()));
        }
        let fd = file.as_raw_fd();
        let ret: isize;
        // Raw syscall 9 (mmap) on x86-64 Linux: addr=NULL, PROT_READ (1),
        // MAP_PRIVATE (2), offset 0 — the repo links no libc crate (same
        // idiom as `dsi_parallel::tp_exec::pin_current_thread`).
        //
        // SAFETY: all six arguments follow the mmap ABI; the kernel either
        // returns a fresh page-aligned mapping or a negative errno, and the
        // register clobbers (rcx/r11) plus `nostack` match the syscall
        // calling convention. `r10`/`r8`/`r9` carry args 4–6.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9isize => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") 1usize, // PROT_READ
                in("r10") 2usize, // MAP_PRIVATE
                in("r8") fd as usize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if (-4095..0).contains(&ret) {
            return Err(std::io::Error::from_raw_os_error(-ret as i32));
        }
        // The mapping outlives `file`: munmap, not close, tears it down.
        Ok(Backing::Mapped { ptr: ret as *const u8, len })
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    fn map(path: &Path) -> std::io::Result<Backing> {
        Ok(Backing::Heap(std::fs::read(path)?))
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (established in `map`, released only in `Drop`).
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Backing::Mapped { ptr, len } = *self {
            let ret: isize;
            // SAFETY: syscall 11 (munmap) over the exact region `map`
            // created; after this the pointer is never read again (we are
            // in `Drop`). Register usage per the syscall ABI.
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") 11isize => ret,
                    in("rdi") ptr as usize,
                    in("rsi") len,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            debug_assert_eq!(ret, 0, "munmap failed");
        }
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// The always-resident group: what every token touches at both ends of the
/// layer stack, parsed once at open.
pub struct ResidentGroup {
    pub wte: Tensor,
    pub wpe: Tensor,
    pub lnf_g: Vec<f32>,
    pub lnf_b: Vec<f32>,
    /// `wteᵀ` pre-packed as the logits GEMM operand.
    pub wte_packed: PackedB,
}

struct CacheEntry {
    panel: Arc<PackedLayer<PackedB>>,
    bytes: usize,
}

#[derive(Default)]
struct CacheState {
    resident: HashMap<usize, CacheEntry>,
    /// Layers a fetch is in flight for (worker-owned once queued).
    inflight: Vec<usize>,
    /// Typed failures parked for the next `acquire(layer)` to consume.
    failed: HashMap<usize, OffloadError>,
    resident_bytes: usize,
    /// The layer most recently acquired — anchors the cyclic
    /// distance-to-next-use eviction order.
    last_acquired: usize,
    worker_dead: bool,
    stats: OffloadStats,
}

struct Inner {
    backing: Backing,
    dir: PanelDirectory,
    cfg: OffloadConfig,
    /// Prefetch depth after clamping to the budget.
    depth: usize,
    state: Mutex<CacheState>,
    cv: Condvar,
    /// Global read-call counter — the coordinate `IoFaultSite::Read`
    /// addresses. Call 0 is the open-time probe fetch of layer 0.
    read_calls: AtomicU64,
    queue: Sender<usize>,
}

/// Sentinel the drop/kill paths enqueue to stop the worker.
const SHUTDOWN: usize = usize::MAX;

/// A fault-hardened tiered weight store over a v2 panel file. See the
/// module docs for the design; `StreamedEngine` is the decode loop on top.
pub struct OffloadStore {
    inner: Arc<Inner>,
    resident: ResidentGroup,
    /// Packed bytes of one layer panel (measured on layer 0 at open; all
    /// layers share one geometry).
    panel_bytes: usize,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl OffloadStore {
    /// Open (map) a weight file and start the prefetch worker. Fails typed
    /// on an unopenable path, a structurally bad file, a corrupt resident
    /// panel, or a budget too small for a single layer panel.
    pub fn open(path: impl AsRef<Path>, cfg: OffloadConfig) -> Result<OffloadStore, OffloadError> {
        let path = path.as_ref();
        // The open itself is fault site `Open { call: 0 }`: a scripted
        // failure here models the tier refusing the handle.
        if let Some(f) = cfg.faults.as_ref() {
            match f.at_open(0) {
                Some(IoFaultKind::SlowRead { millis }) => apply_stall(millis),
                Some(_) => {
                    return Err(OffloadError::FailedOpen {
                        path: path.display().to_string(),
                        detail: "injected open failure".into(),
                    })
                }
                None => {}
            }
        }
        let backing = Backing::map(path).map_err(|e| OffloadError::FailedOpen {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        let dir = io::read_directory(backing.bytes())?;
        // The resident group is loaded once and verified here, not per
        // decode step.
        let p0 = dir.panels[0];
        let payload = &backing.bytes()[p0.offset..p0.offset + p0.len];
        if io::crc32(payload) != p0.crc {
            return Err(OffloadError::Io(IoError::ChecksumMismatch { panel: 0 }));
        }
        let (wte, wpe, lnf_g, lnf_b) = io::parse_resident_panel(payload, &dir.config)?;
        let resident = ResidentGroup {
            wte_packed: PackedB::from_pre_transposed(&wte),
            lnf_g: lnf_g.data().to_vec(),
            lnf_b: lnf_b.data().to_vec(),
            wte,
            wpe,
        };

        let (tx, rx) = mpsc::channel::<usize>();
        let inner = Arc::new(Inner {
            backing,
            dir,
            cfg,
            depth: 0, // set below once panel_bytes is known
            state: Mutex::new(CacheState::default()),
            cv: Condvar::new(),
            read_calls: AtomicU64::new(0),
            queue: tx,
        });

        // Probe fetch of layer 0: measures the packed panel size (uniform
        // across layers), validates the budget, and warms the cache.
        let fetched = inner.fetch_panel(0)?;
        let panel_bytes = fetched.bytes;
        let budget = inner.cfg.resident_budget_bytes;
        if budget < panel_bytes {
            return Err(OffloadError::BudgetExhausted { need: panel_bytes, budget });
        }
        // Depth is bounded by what fits beyond the panel the decode loop
        // holds pinned.
        let depth = inner.cfg.prefetch_depth.min((budget / panel_bytes).saturating_sub(1));
        // SAFETY-free interior update: `Arc::get_mut` is sound here — the
        // worker has not been spawned, so this Arc is unique.
        let inner = {
            let mut inner = inner;
            Arc::get_mut(&mut inner).expect("unique before worker spawn").depth = depth;
            inner
        };
        {
            let mut st = inner.state.lock().unwrap();
            let stats = fetched.stats;
            merge_stats(&mut st.stats, stats);
            st.stats.demand_fetches += 1;
            insert_with_evict(&mut st, &inner.dir, 0, fetched.panel, fetched.bytes, budget);
        }

        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("dsi-offload-prefetch".into())
            .spawn(move || worker_loop(worker_inner, rx))
            .expect("spawn prefetch worker");

        Ok(OffloadStore { inner, resident, panel_bytes, worker: Some(worker) })
    }

    pub fn config(&self) -> &GptConfig {
        &self.inner.dir.config
    }

    pub fn layers(&self) -> usize {
        self.inner.dir.layers()
    }

    /// The always-resident embedding / final-norm group.
    pub fn resident(&self) -> &ResidentGroup {
        &self.resident
    }

    /// Packed bytes of one layer panel.
    pub fn panel_bytes(&self) -> usize {
        self.panel_bytes
    }

    /// Bytes of the backing weight file.
    pub fn file_bytes(&self) -> usize {
        self.inner.backing.bytes().len()
    }

    /// The effective prefetch depth after budget clamping.
    pub fn effective_depth(&self) -> usize {
        self.inner.depth
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> OffloadStats {
        self.inner.state.lock().unwrap().stats
    }

    /// Whether the background prefetcher is still serving the queue.
    pub fn prefetcher_alive(&self) -> bool {
        !self.inner.state.lock().unwrap().worker_dead
    }

    /// Test hook: kill the prefetch worker as if its handle died. Every
    /// subsequent `acquire` falls back to synchronous fetch on the calling
    /// thread.
    pub fn kill_prefetcher(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.worker_dead = true;
            self.inner.cv.notify_all();
        }
        let _ = self.inner.queue.send(SHUTDOWN);
    }

    /// Enqueue the next `effective_depth` layers (cyclically from `next`)
    /// for background fetch. Cheap and non-blocking; already-resident,
    /// in-flight, and failed layers are skipped.
    pub fn prefetch_ahead(&self, next: usize) {
        let layers = self.layers();
        let depth = self.inner.depth.min(layers.saturating_sub(1));
        if depth == 0 {
            return;
        }
        let mut st = self.inner.state.lock().unwrap();
        if st.worker_dead {
            return;
        }
        for i in 0..depth {
            let l = (next + i) % layers;
            if st.resident.contains_key(&l) || st.inflight.contains(&l) || st.failed.contains_key(&l)
            {
                continue;
            }
            st.inflight.push(l);
            if self.inner.queue.send(l).is_err() {
                st.inflight.retain(|&x| x != l);
                st.worker_dead = true;
                return;
            }
        }
    }

    /// Check out layer `l`'s packed panel, fetching it if needed. Blocks
    /// (bounded by `fetch_timeout` on the configured clock) while a fetch
    /// is in flight; performs the fetch inline when the prefetcher is
    /// dead. The returned `Arc` pins the panel against eviction — drop it
    /// before acquiring the next layer (release-before-refetch), or the
    /// budget loses a panel's worth of headroom.
    pub fn acquire(&self, l: usize) -> Result<Arc<PackedLayer<PackedB>>, OffloadError> {
        assert!(l < self.layers(), "layer {l} out of range");
        let inner = &*self.inner;
        let deadline =
            inner.cfg.clock.now_ns().saturating_add(inner.cfg.fetch_timeout.as_nanos() as u64);
        let mut waited_demand = false;
        let mut st = inner.state.lock().unwrap();
        loop {
            if let Some(panel) = st.resident.get(&l).map(|e| Arc::clone(&e.panel)) {
                st.last_acquired = l;
                if waited_demand {
                    st.stats.demand_fetches += 1;
                } else {
                    st.stats.hits += 1;
                }
                return Ok(panel);
            }
            if let Some(err) = st.failed.remove(&l) {
                st.stats.fetch_errors += 1;
                return Err(err);
            }
            waited_demand = true;
            if st.worker_dead {
                // Degraded mode: fetch on the calling thread, without the
                // lock held.
                drop(st);
                let fetched = inner.fetch_panel(l)?;
                st = inner.state.lock().unwrap();
                merge_stats(&mut st.stats, fetched.stats);
                st.stats.sync_fallbacks += 1;
                insert_with_evict(
                    &mut st,
                    &inner.dir,
                    l,
                    fetched.panel,
                    fetched.bytes,
                    inner.cfg.resident_budget_bytes,
                );
                continue;
            }
            if !st.inflight.contains(&l) {
                st.inflight.push(l);
                if inner.queue.send(l).is_err() {
                    st.inflight.retain(|&x| x != l);
                    st.worker_dead = true;
                    continue;
                }
            }
            // Wait in short wall slices; the deadline is measured on the
            // injected clock so chaos tests control it deterministically.
            let (guard, _) = inner.cv.wait_timeout(st, Duration::from_millis(2)).unwrap();
            st = guard;
            if st.resident.contains_key(&l) || st.failed.contains_key(&l) || st.worker_dead {
                continue;
            }
            let now = inner.cfg.clock.now_ns();
            if now >= deadline {
                st.stats.fetch_errors += 1;
                return Err(OffloadError::FetchTimeout {
                    layer: l,
                    waited_ms: inner.cfg.fetch_timeout.as_millis() as u64,
                });
            }
        }
    }
}

impl Drop for OffloadStore {
    fn drop(&mut self) {
        let _ = self.inner.queue.send(SHUTDOWN);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

struct Fetched {
    panel: Arc<PackedLayer<PackedB>>,
    bytes: usize,
    stats: OffloadStats,
}

impl Inner {
    /// Read, verify, parse, and pack one layer panel, re-reading (bounded,
    /// with backoff) on short or checksum-failing reads. Every read
    /// consumes one global `read_calls` coordinate for fault addressing.
    fn fetch_panel(&self, layer: usize) -> Result<Fetched, OffloadError> {
        let entry = *self.dir.layer_panel(layer);
        let src = &self.backing.bytes()[entry.offset..entry.offset + entry.len];
        let mut stats = OffloadStats::default();
        let mut short = 0usize;
        let mut crc_bad = 0usize;
        let attempts = self.cfg.read_retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.cfg.retry_backoff.as_millis() as u64 * attempt as u64;
                apply_stall(backoff);
            }
            let call = self.read_calls.fetch_add(1, Ordering::SeqCst);
            let fault = self.cfg.faults.as_ref().and_then(|f| f.at_read(call));
            let mut buf: Vec<u8>;
            match fault {
                Some(IoFaultKind::SlowRead { millis }) => {
                    apply_stall(millis);
                    stats.slow_reads += 1;
                    stats.stall_ms += millis;
                    buf = src.to_vec();
                }
                Some(IoFaultKind::ShortRead) => {
                    buf = src[..entry.len / 2].to_vec();
                }
                Some(IoFaultKind::CorruptPanel) => {
                    buf = src.to_vec();
                    let mid = buf.len() / 2;
                    buf[mid] ^= 0x40;
                }
                Some(IoFaultKind::FailOpen) => {
                    return Err(OffloadError::HandleLost { layer });
                }
                None => buf = src.to_vec(),
            }
            stats.bytes_read += buf.len() as u64;
            if buf.len() < entry.len {
                short += 1;
                stats.short_read_retries += 1;
                continue;
            }
            if io::crc32(&buf) != entry.crc {
                crc_bad += 1;
                stats.checksum_retries += 1;
                continue;
            }
            let lw = io::parse_layer_panel(&buf, &self.dir.config)?;
            let panel = PackedLayer::pack(&lw);
            let bytes = packed_layer_bytes(&panel);
            return Ok(Fetched { panel: Arc::new(panel), bytes, stats });
        }
        Err(if crc_bad >= short {
            OffloadError::ChecksumFailed { layer, attempts }
        } else {
            OffloadError::ShortReadFailed { layer, attempts }
        })
    }
}

/// Packed in-memory footprint of one layer panel.
fn packed_layer_bytes(pl: &PackedLayer<PackedB>) -> usize {
    pl.w_qkv.storage_bytes()
        + pl.w_o.storage_bytes()
        + pl.w_ff1.storage_bytes()
        + pl.w_ff2.storage_bytes()
        + 4 * (pl.ln1_g.len()
            + pl.ln1_b.len()
            + pl.b_qkv.len()
            + pl.b_o.len()
            + pl.ln2_g.len()
            + pl.ln2_b.len()
            + pl.b_ff1.len()
            + pl.b_ff2.len())
}

fn merge_stats(into: &mut OffloadStats, from: OffloadStats) {
    into.short_read_retries += from.short_read_retries;
    into.checksum_retries += from.checksum_retries;
    into.slow_reads += from.slow_reads;
    into.stall_ms += from.stall_ms;
    into.bytes_read += from.bytes_read;
}

/// Insert a fetched panel, evicting unpinned panels (furthest next use
/// under the cyclic layer schedule first) until it fits. Returns `false`
/// (and drops the panel) if nothing evictable makes room — possible only
/// for a prefetched panel racing a pinned one.
fn insert_with_evict(
    st: &mut CacheState,
    dir: &PanelDirectory,
    layer: usize,
    panel: Arc<PackedLayer<PackedB>>,
    bytes: usize,
    budget: usize,
) -> bool {
    let layers = dir.layers();
    while st.resident_bytes + bytes > budget {
        // Next layer the decode loop will ask for, under the cyclic
        // schedule (forward passes touch 0..L in order, repeatedly).
        let next = (st.last_acquired + 1) % layers;
        let victim = st
            .resident
            .iter()
            .filter(|(_, e)| Arc::strong_count(&e.panel) == 1)
            .max_by_key(|(&l, _)| (l + layers - next) % layers)
            .map(|(&l, _)| l);
        match victim {
            Some(v) => {
                let e = st.resident.remove(&v).expect("victim resident");
                st.resident_bytes -= e.bytes;
                st.stats.evictions += 1;
            }
            None => {
                st.stats.prefetch_dropped += 1;
                return false;
            }
        }
    }
    st.resident_bytes += bytes;
    st.stats.peak_resident_bytes = st.stats.peak_resident_bytes.max(st.resident_bytes);
    st.resident.insert(layer, CacheEntry { panel, bytes });
    true
}

fn worker_loop(inner: Arc<Inner>, rx: Receiver<usize>) {
    while let Ok(layer) = rx.recv() {
        if layer == SHUTDOWN {
            break;
        }
        {
            let st = inner.state.lock().unwrap();
            if st.worker_dead {
                break;
            }
            if st.resident.contains_key(&layer) {
                drop(st);
                let mut st = inner.state.lock().unwrap();
                st.inflight.retain(|&x| x != layer);
                inner.cv.notify_all();
                continue;
            }
        }
        match inner.fetch_panel(layer) {
            Ok(fetched) => {
                let mut st = inner.state.lock().unwrap();
                st.inflight.retain(|&x| x != layer);
                merge_stats(&mut st.stats, fetched.stats);
                if insert_with_evict(
                    &mut st,
                    &inner.dir,
                    layer,
                    fetched.panel,
                    fetched.bytes,
                    inner.cfg.resident_budget_bytes,
                ) {
                    st.stats.prefetch_fetches += 1;
                }
                inner.cv.notify_all();
            }
            Err(e) => {
                let fatal = matches!(e, OffloadError::HandleLost { .. });
                let mut st = inner.state.lock().unwrap();
                st.inflight.retain(|&x| x != layer);
                if fatal {
                    // The handle died under the worker: die cleanly. The
                    // decode thread degrades to synchronous fetch — no
                    // parked error, the layer is still servable.
                    st.worker_dead = true;
                    st.inflight.clear();
                    inner.cv.notify_all();
                    break;
                }
                st.stats.fetch_errors += 1;
                st.failed.insert(layer, e);
                inner.cv.notify_all();
            }
        }
    }
    let mut st = inner.state.lock().unwrap();
    st.worker_dead = true;
    st.inflight.clear();
    inner.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::reference::GptModel;
    use dsi_model::zoo;
    use dsi_sim::fault::{IoFaultPlan, IoFaultSite, IoFaultSpec};

    fn save_model(layers: usize, seed: u64, tag: &str) -> (GptModel, std::path::PathBuf) {
        let m = GptModel::random(zoo::tiny(layers), seed);
        let path = std::env::temp_dir().join(format!("dsi_offload_{tag}_{seed}_{layers}.bin"));
        dsi_model::io::save(&m, &path).expect("save");
        (m, path)
    }

    fn tight_budget(path: &Path) -> usize {
        // Probe: open unbounded once to learn the panel size, then budget
        // for exactly two panels (in-use + one prefetch).
        let store = OffloadStore::open(path, OffloadConfig::default()).expect("probe open");
        store.panel_bytes() * 2
    }

    #[test]
    fn panels_roundtrip_through_the_store() {
        let (m, path) = save_model(3, 11, "rt");
        let store = OffloadStore::open(&path, OffloadConfig::default()).expect("open");
        assert_eq!(store.layers(), 3);
        for l in 0..3 {
            let p = store.acquire(l).expect("acquire");
            assert_eq!(p.ln1_g, m.layers[l].ln1_g.data());
            assert_eq!(p.b_ff2, m.layers[l].b_ff2.data());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn budget_below_one_panel_is_typed_at_open() {
        let (_m, path) = save_model(2, 13, "budget");
        let cfg = OffloadConfig { resident_budget_bytes: 1024, ..OffloadConfig::default() };
        match OffloadStore::open(&path, cfg) {
            Err(OffloadError::BudgetExhausted { need, budget }) => {
                assert!(need > budget);
            }
            other => panic!("expected BudgetExhausted, got {:?}", other.map(|_| ())),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn tight_budget_evicts_and_still_serves_every_layer() {
        let (m, path) = save_model(4, 17, "evict");
        let budget = tight_budget(&path);
        let cfg = OffloadConfig {
            resident_budget_bytes: budget,
            prefetch_depth: 4,
            ..OffloadConfig::default()
        };
        let store = OffloadStore::open(&path, cfg).expect("open");
        assert!(store.file_bytes() > budget, "file must exceed the resident budget");
        assert_eq!(store.effective_depth(), 1, "budget clamps depth to one ahead");
        // Three full passes over the layers — forced eviction every pass.
        for _ in 0..3 {
            for l in 0..4 {
                let p = store.acquire(l).expect("acquire");
                store.prefetch_ahead(l + 1);
                assert_eq!(p.ln2_b, m.layers[l].ln2_b.data());
            }
        }
        let st = store.stats();
        assert!(st.evictions > 0, "tight budget must evict");
        assert!(st.peak_resident_bytes <= budget, "budget respected");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupt_read_is_retried_then_clean() {
        let (m, path) = save_model(2, 19, "crc");
        // Read call 0 is the open-time probe of layer 0: corrupt it and
        // the bounded re-read must recover without surfacing an error.
        let plan = IoFaultPlan::new(vec![IoFaultSpec {
            site: IoFaultSite::Read { call: 0 },
            kind: IoFaultKind::CorruptPanel,
        }]);
        let cfg = OffloadConfig {
            faults: Some(Arc::new(plan.injector())),
            ..OffloadConfig::default()
        };
        let store = OffloadStore::open(&path, cfg).expect("open survives one corrupt read");
        let p = store.acquire(0).expect("layer 0");
        assert_eq!(p.ln1_g, m.layers[0].ln1_g.data());
        assert_eq!(store.stats().checksum_retries, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn persistent_corruption_is_typed_after_bounded_retries() {
        let (_m, path) = save_model(2, 23, "crc2");
        // Corrupt every one of the open probe's attempts (retries = 2 →
        // 3 attempts, calls 0..3).
        let specs = (0..3)
            .map(|c| IoFaultSpec {
                site: IoFaultSite::Read { call: c },
                kind: IoFaultKind::CorruptPanel,
            })
            .collect();
        let cfg = OffloadConfig {
            faults: Some(Arc::new(IoFaultPlan::new(specs).injector())),
            read_retries: 2,
            retry_backoff: Duration::from_millis(0),
            ..OffloadConfig::default()
        };
        match OffloadStore::open(&path, cfg) {
            Err(OffloadError::ChecksumFailed { layer: 0, attempts: 3 }) => {}
            other => panic!("expected ChecksumFailed, got {:?}", other.map(|_| ())),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn dead_prefetcher_degrades_to_synchronous_fetch() {
        let (m, path) = save_model(3, 29, "sync");
        let store = OffloadStore::open(&path, OffloadConfig::default()).expect("open");
        store.kill_prefetcher();
        assert!(!store.prefetcher_alive());
        for l in 0..3 {
            let p = store.acquire(l).expect("sync acquire");
            store.prefetch_ahead(l + 1); // harmless no-op when dead
            assert_eq!(p.b_qkv, m.layers[l].b_qkv.data());
        }
        assert!(store.stats().sync_fallbacks >= 2, "layers 1/2 fetched inline");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn injected_open_failure_is_typed() {
        let (_m, path) = save_model(2, 31, "open");
        let plan = IoFaultPlan::new(vec![IoFaultSpec {
            site: IoFaultSite::Open { call: 0 },
            kind: IoFaultKind::FailOpen,
        }]);
        let cfg = OffloadConfig {
            faults: Some(Arc::new(plan.injector())),
            ..OffloadConfig::default()
        };
        assert!(matches!(
            OffloadStore::open(&path, cfg).map(|_| ()),
            Err(OffloadError::FailedOpen { .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn error_strings_land_in_the_right_breaker_classes() {
        // The breaker bridge is Display-text based; pin the keywords.
        let timeout = OffloadError::FetchTimeout { layer: 3, waited_ms: 10 }.to_string();
        assert!(timeout.contains("timed out"));
        let crc = OffloadError::ChecksumFailed { layer: 1, attempts: 3 }.to_string();
        assert!(crc.contains("corrupt"));
        let short = OffloadError::ShortReadFailed { layer: 1, attempts: 3 }.to_string();
        assert!(short.contains("corrupt"));
        let mem = OffloadError::BudgetExhausted { need: 10, budget: 5 }.to_string();
        assert!(mem.contains("memory"));
    }
}
