//! Functional weight streaming: a tiered parameter store that *actually*
//! holds the layer weights outside the "GPU" and serves them through a
//! bounded buffer pool with prefetching — the data-plane of ZeRO-Inference
//! (Sec. VI-A), executable and checkable.
//!
//! The store enforces the design's core invariant: at any moment at most
//! `prefetch + 1` layers are resident in GPU buffers ("limiting GPU memory
//! usage of the model to one or a few layers of weights"). Fetch counts and
//! byte counters make the streaming behaviour observable; the forward pass
//! through the store is verified identical to the in-memory reference.
//!
//! This is the in-memory teaching model. The production-shaped tier — a
//! memory-mapped, checksummed weight file with a prefetch worker, eviction
//! under a byte budget, and I/O fault tolerance — is [`crate::offload`].

use dsi_model::reference::{layer_forward, GptModel, KvCache, LayerWeights};
use dsi_kernels::ops;
use dsi_kernels::tensor::Tensor;
use std::collections::VecDeque;

/// Where a layer's weights live (functional mirror of [`crate::tiers::Tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    /// Host-side store (DRAM/NVMe in the performance model).
    Host,
    /// Resident in a GPU buffer slot.
    Device,
}

/// Statistics of one streamed pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Layer fetches issued.
    pub fetches: usize,
    /// Bytes moved host→device (f32 accounting of the functional weights).
    pub bytes_fetched: usize,
    /// Peak number of simultaneously resident layers.
    pub peak_resident: usize,
}

/// A bounded-buffer streaming view over a model's layer weights.
pub struct StreamingStore {
    /// Host-resident layer weights (the pinned DRAM/NVMe copy).
    host: Vec<LayerWeights>,
    /// Device buffer pool: FIFO of (layer index, weights clone).
    device: VecDeque<(usize, LayerWeights)>,
    /// Buffer slots available = prefetch depth + 1.
    pub capacity: usize,
    pub stats: StreamStats,
}

fn layer_bytes(lw: &LayerWeights) -> usize {
    4 * (lw.w_qkv.len()
        + lw.b_qkv.len()
        + lw.w_o.len()
        + lw.b_o.len()
        + lw.w_ff1.len()
        + lw.b_ff1.len()
        + lw.w_ff2.len()
        + lw.b_ff2.len()
        + lw.ln1_g.len()
        + lw.ln1_b.len()
        + lw.ln2_g.len()
        + lw.ln2_b.len())
}

impl StreamingStore {
    /// Pin the model's layers in the host tier with `prefetch` extra device
    /// buffers.
    pub fn new(model: &GptModel, prefetch: usize) -> Self {
        StreamingStore {
            host: model.layers.clone(),
            device: VecDeque::new(),
            capacity: prefetch + 1,
            stats: StreamStats::default(),
        }
    }

    pub fn n_layers(&self) -> usize {
        self.host.len()
    }

    /// Residence of layer `l` right now.
    pub fn residence(&self, l: usize) -> Residence {
        if self.device.iter().any(|&(i, _)| i == l) {
            Residence::Device
        } else {
            Residence::Host
        }
    }

    /// Fetch layer `l` into a device buffer (evicting the oldest buffer if
    /// the pool is full). No-op if already resident.
    pub fn fetch(&mut self, l: usize) {
        assert!(l < self.host.len(), "layer {l} out of range");
        if self.residence(l) == Residence::Device {
            return;
        }
        if self.device.len() == self.capacity {
            self.device.pop_front();
        }
        let w = self.host[l].clone();
        self.stats.fetches += 1;
        self.stats.bytes_fetched += layer_bytes(&w);
        self.device.push_back((l, w));
        self.stats.peak_resident = self.stats.peak_resident.max(self.device.len());
    }

    /// Borrow a resident layer's weights; panics if the schedule forgot to
    /// fetch it (the bug this functional model exists to catch).
    pub fn resident(&self, l: usize) -> &LayerWeights {
        self.device
            .iter()
            .find(|&&(i, _)| i == l)
            .map(|(_, w)| w)
            .unwrap_or_else(|| panic!("layer {l} not resident — fetch ordering bug"))
    }
}

/// A ZeRO-Inference-style forward pass: stream each layer in (with
/// `prefetch`-deep lookahead) and run it, keeping only the buffer pool
/// resident. Returns the logits and the stream statistics.
pub fn streamed_forward(
    model: &GptModel,
    ids: &[usize],
    cache: &mut KvCache,
    prefetch: usize,
) -> (Tensor, StreamStats) {
    let mut store = StreamingStore::new(model, prefetch);
    let offset = cache.context_len();
    let mut x = ops::embedding(&model.wte, ids);
    for (i, row) in (offset..offset + ids.len()).enumerate() {
        let pos = model.wpe.row(row).to_vec();
        for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
            *a += b;
        }
    }
    let n = store.n_layers();
    // Warm the pipeline: current layer plus `prefetch` ahead.
    for l in 0..=prefetch.min(n - 1) {
        store.fetch(l);
    }
    for l in 0..n {
        let lw = store.resident(l).clone();
        x = layer_forward(&lw, &x, &mut cache.layers[l], model.config.heads);
        // Layer l's buffer is now free: fetch the next lookahead layer
        // (overlapped with the next layer's compute in the performance
        // model). Fetching before the compute would evict layer l from the
        // FIFO pool while it is still needed.
        if l + prefetch + 1 < n {
            store.fetch(l + prefetch + 1);
        }
    }
    let x = ops::layernorm(&x, &model.lnf_g, &model.lnf_b, 1e-5);
    (ops::matmul_transb(&x, &model.wte), store.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo;

    fn model() -> GptModel {
        GptModel::random(zoo::tiny(4), 23)
    }

    #[test]
    fn streamed_forward_matches_reference() {
        let m = model();
        let ids = [5usize, 6, 7];
        for prefetch in [0usize, 1, 3] {
            let mut cache = KvCache::new(4, 64);
            let (got, _) = streamed_forward(&m, &ids, &mut cache, prefetch);
            let want = m.forward_full(&ids);
            assert!(
                got.allclose(&want, 1e-5),
                "prefetch {prefetch}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn buffer_pool_never_exceeds_capacity() {
        let m = model();
        let mut cache = KvCache::new(4, 64);
        let (_, stats) = streamed_forward(&m, &[1, 2], &mut cache, 1);
        assert!(stats.peak_resident <= 2, "peak {}", stats.peak_resident);
        assert_eq!(stats.fetches, 4, "each layer fetched exactly once");
    }

    #[test]
    fn fetch_bytes_account_whole_model() {
        let m = model();
        let mut cache = KvCache::new(4, 64);
        let (_, stats) = streamed_forward(&m, &[1], &mut cache, 2);
        let per_layer = layer_bytes(&m.layers[0]);
        assert_eq!(stats.bytes_fetched, 4 * per_layer);
    }

    #[test]
    fn refetch_is_noop_when_resident() {
        let m = model();
        let mut store = StreamingStore::new(&m, 1);
        store.fetch(0);
        store.fetch(0);
        assert_eq!(store.stats.fetches, 1);
        assert_eq!(store.residence(0), Residence::Device);
        assert_eq!(store.residence(3), Residence::Host);
    }

    #[test]
    fn eviction_is_fifo() {
        let m = model();
        let mut store = StreamingStore::new(&m, 1); // capacity 2
        store.fetch(0);
        store.fetch(1);
        store.fetch(2); // evicts 0
        assert_eq!(store.residence(0), Residence::Host);
        assert_eq!(store.residence(1), Residence::Device);
        assert_eq!(store.residence(2), Residence::Device);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn using_unfetched_layer_panics() {
        let m = model();
        let store = StreamingStore::new(&m, 0);
        store.resident(2);
    }

    #[test]
    fn streamed_generation_multi_step() {
        // Token-by-token generation with streaming matches the reference
        // generate loop.
        let m = model();
        let want = m.generate(&[9, 8, 7], 4);
        let mut cache = KvCache::new(4, 64);
        let (logits, _) = streamed_forward(&m, &[9, 8, 7], &mut cache, 1);
        let mut next = dsi_kernels::ops::argmax_rows(
            &logits.row_slice(logits.rows() - 1, logits.rows()),
        )[0];
        let mut got = vec![next];
        for _ in 1..4 {
            let (logits, _) = streamed_forward(&m, &[next], &mut cache, 1);
            next = dsi_kernels::ops::argmax_rows(&logits)[0];
            got.push(next);
        }
        assert_eq!(got, want);
    }
}
