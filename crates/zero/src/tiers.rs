//! Weight placement across the heterogeneous memory hierarchy, and
//! feasibility of the three serving strategies compared in Sec. VII-D1.

use dsi_model::config::GptConfig;
use dsi_sim::hw::{DType, NodeSpec};
use serde::Serialize;

/// Where ZeRO-Inference pins the model weights (Sec. VI-A: "pins the model
/// weights either in DRAM (if large enough) or NVMe").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Tier {
    /// Whole model fits in one GPU (no streaming needed).
    Gpu,
    /// Host DRAM; streamed over PCIe.
    Dram,
    /// NVMe; streamed at NVMe read bandwidth.
    Nvme,
}

impl Tier {
    /// Bandwidth at which a layer can be sourced from this tier toward one
    /// GPU, before PCIe sharing effects.
    pub fn read_bw(self, node: &NodeSpec) -> f64 {
        match self {
            Tier::Gpu => node.gpu.mem_bw,
            Tier::Dram => node.pcie.bw.min(node.dram_bw),
            Tier::Nvme => node.nvme_read_bw.min(node.pcie.bw),
        }
    }
}

/// GPU memory ZeRO-Inference reserves for streaming buffers rather than
/// activations: one buffer per layer of overlap depth (`prefetch`) plus the
/// layer currently computing.
pub fn buffer_bytes(model: &GptConfig, dtype: DType, prefetch: usize) -> f64 {
    (prefetch as f64 + 1.0) * model.layer_weight_bytes(dtype)
}

/// Decide the weight tier for `model` on `node`, or `None` if even NVMe
/// cannot hold it.
pub fn place_weights(model: &GptConfig, node: &NodeSpec, dtype: DType) -> Option<Tier> {
    let w = model.weight_bytes(dtype);
    // "Whole model in GPU" needs headroom for activations; use 90%.
    if w < node.gpu.mem_bytes as f64 * 0.9 {
        Some(Tier::Gpu)
    } else if w < node.dram_bytes as f64 * 0.9 {
        Some(Tier::Dram)
    } else if w < node.nvme_bytes as f64 * 0.95 {
        Some(Tier::Nvme)
    } else {
        None
    }
}

/// Can a GPU-only solution serve this model (weights + at least a batch-1
/// working set resident in one GPU)?
pub fn gpu_only_feasible(model: &GptConfig, node: &NodeSpec, dtype: DType, seq: usize) -> bool {
    let w = model.weight_bytes(dtype);
    let act1 = model.prompt_activation_bytes_per_seq(seq, dtype);
    w + act1 < node.gpu.mem_bytes as f64 * 0.95
}

/// Can a CPU-only solution serve this model? CPU inference runs FP32 out of
/// DRAM (the 2022-era CPU stacks the paper compares against).
pub fn cpu_only_feasible(model: &GptConfig, node: &NodeSpec) -> bool {
    model.weight_bytes(DType::Fp32) < node.dram_bytes as f64 * 0.9
}

/// Largest Table-I-style model (by parameter count) each strategy can serve;
/// returns (gpu_only_max, cpu_only_max, zero_max) over the given candidates.
pub fn max_model_per_strategy<'a>(
    candidates: &'a [GptConfig],
    node: &NodeSpec,
    dtype: DType,
    seq: usize,
) -> (Option<&'a GptConfig>, Option<&'a GptConfig>, Option<&'a GptConfig>) {
    let best = |pred: &dyn Fn(&GptConfig) -> bool| {
        candidates
            .iter()
            .filter(|c| pred(c))
            .max_by(|a, b| a.total_params().partial_cmp(&b.total_params()).unwrap())
    };
    (
        best(&|c| gpu_only_feasible(c, node, dtype, seq)),
        best(&|c| cpu_only_feasible(c, node)),
        best(&|c| place_weights(c, node, dtype).is_some()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_model::zoo::table1;
    use dsi_sim::hw::NodeSpec;

    fn lambda() -> NodeSpec {
        NodeSpec::lambda_a6000()
    }

    #[test]
    fn placement_tiers_by_size() {
        let node = lambda();
        let small = GptConfig::new("s", 1600, 48, 25); // 1.5B -> GPU
        let mid = GptConfig::new("m", 8192, 62, 64); // 50B -> DRAM
        let big = GptConfig::new("b", 20480, 105, 128); // 530B -> NVMe
        assert_eq!(place_weights(&small, &node, DType::Fp16), Some(Tier::Gpu));
        assert_eq!(place_weights(&mid, &node, DType::Fp16), Some(Tier::Dram));
        assert_eq!(place_weights(&big, &node, DType::Fp16), Some(Tier::Nvme));
    }

    #[test]
    fn paper_25x_and_10x_model_scale() {
        // Sec. VII-D1: ZeRO-Inference serves 530B on one A6000 — 25× the
        // largest GPU-only model (20B) and 10× the CPU-only one (50B).
        let node = lambda();
        let models: Vec<GptConfig> = table1().into_iter().map(|e| e.config).collect();
        let (gpu, cpu, zero) = max_model_per_strategy(&models, &node, DType::Fp16, 2048);
        assert_eq!(gpu.unwrap().name, "GPT-NeoX-20B");
        assert_eq!(cpu.unwrap().name, "GPT-50B");
        assert_eq!(zero.unwrap().name, "LM-530B");
        let ratio_gpu = zero.unwrap().total_params() / gpu.unwrap().total_params();
        let ratio_cpu = zero.unwrap().total_params() / cpu.unwrap().total_params();
        assert!(ratio_gpu > 20.0 && ratio_gpu < 30.0, "gpu ratio {ratio_gpu:.1}");
        assert!(ratio_cpu > 8.0 && ratio_cpu < 13.0, "cpu ratio {ratio_cpu:.1}");
    }

    #[test]
    fn tier_bandwidth_ordering() {
        let node = lambda();
        assert!(Tier::Gpu.read_bw(&node) > Tier::Dram.read_bw(&node));
        assert!(Tier::Dram.read_bw(&node) > Tier::Nvme.read_bw(&node));
    }

    #[test]
    fn buffer_bytes_grow_with_prefetch() {
        let m = GptConfig::new("m", 4096, 28, 32);
        assert!(
            buffer_bytes(&m, DType::Fp16, 3) > buffer_bytes(&m, DType::Fp16, 0)
        );
    }

    #[test]
    fn oversized_model_rejected() {
        let node = lambda();
        let huge = GptConfig::new("10T", 65536, 200, 512);
        assert_eq!(place_weights(&huge, &node, DType::Fp16), None);
    }
}
