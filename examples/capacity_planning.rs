//! Capacity planning for a production deployment: pick the parallelism
//! mapping with the planner, then stress it with the request-level serving
//! simulator to find the arrival rate it sustains under a latency SLA.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use deepspeed_inference::planner::{plan, Objective};
use deepspeed_inference::serving::{simulate_serving, BatchPolicy, Workload};
use deepspeed_inference::zoo;
use deepspeed_inference::{ClusterSpec, EngineConfig, InferenceEngine};

fn main() {
    let model = zoo::dense_by_name("GPT-13B").unwrap();
    let cluster = ClusterSpec::dgx_a100(1);
    println!(
        "capacity planning: {} on one DGX A100 (8 GPUs)\n",
        model.name
    );

    // ---- 1. choose the mapping -------------------------------------------
    let latency_plan = plan(&model, &cluster, 128, 8, Objective::MinLatency { batch: 1 }, None)
        .expect("feasible");
    println!(
        "planner: best latency mapping TP{}xPP{} -> {:.0} ms end-to-end (b=1)",
        latency_plan.best.tp,
        latency_plan.best.pp,
        latency_plan.best.report.total_latency * 1e3
    );
    for c in latency_plan.candidates.iter().take(4) {
        println!(
            "  candidate TP{}xPP{} ({} GPUs): {:.0} ms",
            c.tp,
            c.pp,
            c.gpus,
            c.report.total_latency * 1e3
        );
    }

    // ---- 2. stress the chosen deployment ----------------------------------
    let engine = InferenceEngine::new(EngineConfig::deepspeed(
        model,
        cluster,
        latency_plan.best.tp,
        latency_plan.best.pp,
    ));
    let policy = BatchPolicy {
        max_batch: 16,
        max_wait: 0.05,
    };
    let sla = 3.0; // seconds, p99
    println!("\nserving sweep (prompt 128, gen 8, dynamic batching ≤16, 50 ms window):");
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "req/s", "p50 ms", "p99 ms", "batch", "util", "p99 SLA 3s"
    );
    let mut sustained = 0.0;
    for rate in [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let r = simulate_serving(
            &engine,
            &Workload {
                arrival_rate: rate,
                prompt: 128,
                gen: 8,
                requests: 300,
                seed: 7,
            },
            policy,
        );
        let ok = r.p99 <= sla;
        if ok {
            sustained = rate;
        }
        println!(
            "{:>10.0} {:>9.0} {:>9.0} {:>9.1} {:>10.0}% {:>11}",
            rate,
            r.p50 * 1e3,
            r.p99 * 1e3,
            r.mean_batch,
            r.utilization * 100.0,
            if ok { "ok" } else { "violated" }
        );
    }
    println!("\nsustainable load under the 3 s p99 SLA: ~{sustained:.0} requests/s");
}
