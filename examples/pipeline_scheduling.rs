//! Inference-optimized pipeline parallelism, hands on (Sec. IV, Figs. 2–3).
//!
//! Builds the 175B TP8×PP2 deployment of Fig. 8/13, then dissects where the
//! throughput comes from: the token-queue schedule, hybrid micro-batching,
//! and KV offload with odd/even PCIe staggering — the same ablation as the
//! paper's Fig. 10(b), but interactive.
//!
//! ```sh
//! cargo run --release --example pipeline_scheduling
//! ```

use deepspeed_inference::parallel::pipeline::{PipelineSchedule, PipelineSpec};
use deepspeed_inference::zoo;
use deepspeed_inference::{ClusterSpec, EngineConfig, InferenceEngine};

fn main() {
    // ---- raw schedules on the discrete-event engine -----------------------
    // Four stages, 16 generated tokens; watch the bubbles.
    let spec = PipelineSpec {
        stages: 4,
        prompt_microbatches: 16,
        gen_microbatches: 4,
        gen_tokens: 16,
        stage_prompt_time_full: 40e-3,
        stage_gen_time: 2e-3,
        microbatch_overhead: 0.1e-3,
        p2p_time: 0.05e-3,
    };
    println!("raw pipeline schedules (4 stages, 16 tokens):");
    for (name, sched) in [
        ("training-style (Fig. 2a)", PipelineSchedule::TrainingStyle),
        ("token queue    (Fig. 2b)", PipelineSchedule::InferenceQueue),
    ] {
        let r = spec.run(sched);
        println!(
            "  {name}: total {:>6.1} ms, {:.2} ms/token, bubble {:>4.1}%",
            r.total_latency * 1e3,
            r.per_token_latency * 1e3,
            100.0 * r.bubble_fraction
        );
    }

    // Hybrid scheduling: sweep generation micro-batch counts (Fig. 3).
    println!("\nhybrid scheduling — generation micro-batch count sweep:");
    for mg in [4usize, 8, 16] {
        let s = PipelineSpec {
            gen_microbatches: mg,
            ..spec.clone()
        };
        let r = s.run(PipelineSchedule::InferenceQueue);
        println!(
            "  gen micro-batches {mg:>2}: {:.2} ms/token (prompt latency {:.1} ms unchanged)",
            r.per_token_latency * 1e3,
            r.prompt_latency * 1e3
        );
    }

    // ---- the full 175B deployment -----------------------------------------
    let model = zoo::dense_by_name("LM-175B").unwrap();
    let cluster = ClusterSpec::dgx_a100(2); // 16 A100s
    println!("\nLM-175B on 16 A100s (TP8 x PP2), prompt 512, generate 50:");

    let steps: [(&str, [bool; 4]); 4] = [
        ("training-style", [false, false, false, false]),
        ("+token queue", [true, false, false, false]),
        ("+hybrid", [true, true, false, false]),
        ("+KV offload/odd-even", [true, true, true, true]),
    ];
    let mut base = 0.0;
    for (name, [sched, hybrid, offload, odd_even]) in steps {
        let mut cfg = EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 2);
        cfg.inference_schedule = sched;
        cfg.hybrid_schedule = hybrid;
        cfg.kv_offload = offload;
        cfg.odd_even_offload = odd_even;
        let e = InferenceEngine::new(cfg);
        let r = e.best_throughput(512, 50).unwrap();
        if base == 0.0 {
            base = r.tokens_per_s;
        }
        println!(
            "  {name:<22}: batch {:>3}, {:>5.0} tokens/s ({:.2}x)",
            r.batch,
            r.tokens_per_s,
            r.tokens_per_s / base
        );
    }
}
