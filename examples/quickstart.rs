//! Quickstart: generate text with the functional GPT reference and predict
//! serving latency for the same workload on simulated A100s.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepspeed_inference::zoo;
use deepspeed_inference::{ClusterSpec, EngineConfig, GptModel, InferenceEngine};

fn main() {
    // ---- 1. Functional inference (tiny model, real numbers) --------------
    // A 4-layer toy GPT with deterministic random weights: the same code
    // paths (KV cache, causal attention, greedy decoding) the paper's
    // system accelerates, executed numerically on CPU.
    let tiny = zoo::tiny(4);
    let model = GptModel::random(tiny, 1234);
    let prompt = [1usize, 7, 42, 99];
    let generated = model.generate(&prompt, 12);
    println!("functional GPT: prompt {prompt:?} -> generated {generated:?}");

    // ---- 2. Serving-latency prediction on simulated hardware -------------
    // GPT-J-6B on one A100, DeepSpeed Inference kernels (Deep-Fusion +
    // SBI-GeMM + CUDA graphs). Workload: 128-token prompt, 8 output tokens.
    let gptj = zoo::dense_by_name("GPT-J-6B").expect("in the zoo");
    let engine = InferenceEngine::new(EngineConfig::deepspeed(
        gptj,
        ClusterSpec::dgx_a100(1),
        /*tensor parallel*/ 1,
        /*pipeline stages*/ 1,
    ));
    for batch in [1usize, 4, 16] {
        let run = engine.generation(batch, 128, 8);
        println!(
            "GPT-J-6B  batch {batch:>2}: first token {:>7.2} ms, total {:>7.2} ms, {:>6.0} tokens/s",
            run.prompt_latency * 1e3,
            run.total_latency * 1e3,
            run.tokens_per_s
        );
    }

    // ---- 3. Scale out with tensor parallelism ----------------------------
    let neox = zoo::dense_by_name("GPT-NeoX-20B").unwrap();
    for tp in [1usize, 2, 4, 8] {
        let engine = InferenceEngine::new(EngineConfig::deepspeed(
            neox.clone(),
            ClusterSpec::dgx_a100(1),
            tp,
            1,
        ));
        let run = engine.generation(1, 128, 8);
        println!(
            "GPT-NeoX-20B TP={tp}: total {:>7.2} ms (aggregate bandwidth at work)",
            run.total_latency * 1e3
        );
    }
}
