//! Serve a trillion-parameter Mixture-of-Experts model interactively —
//! the Sec. VII-B2 headline: "a staggering trillion parameter MoE model can
//! be served under 25ms" on 256 GPUs.
//!
//! Walks the Table II family, shows the latency breakdown, and demonstrates
//! the functional MoE layer (gating, dispatch, expert FFNs, combine) plus
//! the PCC all-to-all equivalence that makes the communication optimization
//! safe.
//!
//! ```sh
//! cargo run --release --example serve_trillion_moe
//! ```

use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::moe::layer::{ep_forward, flat_exchange, pcc_exchange, MoeLayer};
use deepspeed_inference::zoo;
use deepspeed_inference::{MoeSystem, MoeSystemKind};

fn main() {
    const BATCH: usize = 8;

    println!("Table II models, per-token generation latency (batch {BATCH}):\n");
    println!(
        "{:>14} {:>8} {:>6} {:>12} {:>12} {:>8}",
        "model", "size(B)", "GPUs", "baseline ms", "DeepSpeed ms", "speedup"
    );
    for cfg in zoo::table2() {
        let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed);
        let base = MoeSystem::new(cfg.clone(), MoeSystemKind::PyTorchBaseline);
        let l_ds = ds.token_latency(BATCH).total;
        let l_b = base.token_latency(BATCH).total;
        println!(
            "{:>14} {:>8.0} {:>6} {:>12.2} {:>12.2} {:>7.2}x",
            cfg.name,
            cfg.total_params() / 1e9,
            cfg.gpus,
            l_b * 1e3,
            l_ds * 1e3,
            l_b / l_ds
        );
    }

    // Zoom into the 1T model: where does the time go?
    let one_t = zoo::table2().into_iter().nth(3).unwrap(); // 24B+MoE-128
    let ds = MoeSystem::new(one_t.clone(), MoeSystemKind::DeepSpeed);
    let t = ds.token_latency(BATCH);
    println!(
        "\n{} ({:.2}T params) breakdown: dense {:.2} ms | all-reduce {:.2} ms | \
         gating {:.3} ms | all-to-all {:.2} ms | experts {:.2} ms | total {:.2} ms",
        one_t.name,
        one_t.total_params() / 1e12,
        t.dense_compute * 1e3,
        t.tp_allreduce * 1e3,
        t.gating * 1e3,
        t.alltoall * 1e3,
        t.expert_compute * 1e3,
        t.total * 1e3
    );
    assert!(t.total < 25e-3, "the 1T model must serve under 25 ms");
    println!(
        "aggregate memory bandwidth: {:.0} TB/s ({:.0}% of the 256-GPU peak)",
        ds.aggregate_bandwidth(BATCH) / 1e12,
        100.0 * ds.aggregate_bandwidth(BATCH) / ds.cluster.aggregate_mem_bw()
    );

    // ---- functional MoE: expert parallelism really moves the tokens ------
    let layer = MoeLayer::random(32, 8, 1, 7);
    let x = Tensor::randn(&[16, 32], 1.0, 8);
    let single = layer.forward(&x, 16);
    let parallel = ep_forward(&layer, &x, 4, 4);
    assert!(
        parallel.allclose(&single, 1e-4),
        "expert-parallel forward must match the single-device reference"
    );
    println!("\nfunctional check: 4-rank expert-parallel forward == single-device forward");

    // ---- PCC all-to-all delivers identical data, cheaper ------------------
    let data: Vec<Vec<f32>> = (0..4)
        .map(|j| Tensor::randn(&[4 * 16], 1.0, 100 + j).into_data())
        .collect();
    assert_eq!(flat_exchange(&data, 4), pcc_exchange(&data, 4));
    println!("functional check: PCC exchange == flat all-to-all exchange (L=4)");
}
