//! Schedule introspection: render the Fig. 2 pipeline schedules as ASCII
//! Gantt charts and export a Chrome/Perfetto trace of the token-queue
//! schedule.
//!
//! ```sh
//! cargo run --release --example trace_visualization
//! # then open trace.json in https://ui.perfetto.dev
//! ```

use deepspeed_inference::parallel::pipeline::{PipelineSchedule, PipelineSpec};
use deepspeed_inference::sim::trace::{chrome_trace, gantt};

fn main() {
    let spec = PipelineSpec {
        stages: 4,
        prompt_microbatches: 4,
        gen_microbatches: 4,
        gen_tokens: 6,
        stage_prompt_time_full: 8e-3,
        stage_gen_time: 1e-3,
        microbatch_overhead: 0.05e-3,
        p2p_time: 0.02e-3,
    };

    for (name, sched) in [
        ("training-style schedule (Fig. 2a) — watch the drain bubbles", PipelineSchedule::TrainingStyle),
        ("token-queue schedule (Fig. 2b) — bubbles amortized", PipelineSchedule::InferenceQueue),
    ] {
        let (graph, _) = spec.build(sched);
        let s = graph.simulate();
        s.validate(&graph).expect("valid schedule");
        println!("\n{name}");
        println!("makespan: {:.1} ms", s.makespan * 1e3);
        // 'p' = prompt tasks, 'g' = generation tasks per stage lane.
        print!("{}", gantt(&graph, &s, 100));
    }

    // Export the interesting one for Perfetto.
    let (graph, _) = spec.build(PipelineSchedule::InferenceQueue);
    let s = graph.simulate();
    let json = chrome_trace(&graph, &s);
    std::fs::write("trace.json", &json).expect("write trace.json");
    println!(
        "\nwrote trace.json ({} bytes) — open it at https://ui.perfetto.dev",
        json.len()
    );
}
