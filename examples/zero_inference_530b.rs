//! Democratized large-model inference: run MT-NLG-530B on a single A6000
//! workstation with ZeRO-Inference (Sec. VI / Sec. VII-D).
//!
//! Shows the tiered weight placement (GPU / DRAM / NVMe), the max-batch
//! solver, the prefetch overlap, and the three-way comparison against
//! GPU-only and CPU-only serving.
//!
//! ```sh
//! cargo run --release --example zero_inference_530b
//! ```

use deepspeed_inference::zero::engine::ZeroInference;
use deepspeed_inference::zero::tiers::{max_model_per_strategy, Tier};
use deepspeed_inference::zoo;
use deepspeed_inference::{DType, NodeSpec};

fn main() {
    let node = NodeSpec::lambda_a6000();
    println!(
        "workstation: 1x {}, {} GB DRAM, {} TB NVMe\n",
        node.gpu.name,
        node.dram_bytes >> 30,
        node.nvme_bytes >> 40
    );

    // ---- who can serve what? ---------------------------------------------
    let models: Vec<_> = zoo::table1().into_iter().map(|e| e.config).collect();
    let (gpu_max, cpu_max, zero_max) = max_model_per_strategy(&models, &node, DType::Fp16, 2048);
    println!("largest servable model per strategy:");
    println!("  GPU-only       : {}", gpu_max.map(|m| m.name.as_str()).unwrap_or("none"));
    println!("  CPU-only (fp32): {}", cpu_max.map(|m| m.name.as_str()).unwrap_or("none"));
    println!("  ZeRO-Inference : {}", zero_max.map(|m| m.name.as_str()).unwrap_or("none"));
    println!(
        "  -> {:.0}x the GPU-only limit, {:.0}x the CPU-only limit\n",
        zero_max.unwrap().total_params() / gpu_max.unwrap().total_params(),
        zero_max.unwrap().total_params() / cpu_max.unwrap().total_params()
    );

    // ---- serve the 530B model --------------------------------------------
    let z = ZeroInference::new(zoo::dense_by_name("LM-530B").unwrap(), node.clone(), 1);
    let tier = z.tier().expect("530B fits on the NVMe");
    assert_eq!(tier, Tier::Nvme);
    let batch = z.max_batch();
    let run = z.run(batch).unwrap();
    println!(
        "LM-530B streamed from {:?}: batch {}, forward pass {:.1} s, {:.1} TFLOPS \
         ({:.0}% of the {:.1} TFLOPS peak), fetch stall {:.0}%",
        run.tier,
        run.batch,
        run.time,
        run.flops_per_gpu / 1e12,
        100.0 * run.flops_per_gpu / node.gpu.peak_fp16,
        node.gpu.peak_fp16 / 1e12,
        100.0 * run.stall_fraction
    );

    // ---- prefetch ablation -------------------------------------------------
    let mut z = z;
    for prefetch in [0usize, 1, 2, 4] {
        z.prefetch = prefetch;
        let r = z.run(4).unwrap();
        println!(
            "  prefetch {prefetch}: small-batch (b=4) throughput {:.1} TFLOPS, stall {:.0}%",
            r.flops_per_gpu / 1e12,
            100.0 * r.stall_fraction
        );
    }

    // ---- models that fit elsewhere: compare the three strategies ----------
    println!();
    for name in ["GPT-NeoX-20B", "GPT-50B"] {
        let z = ZeroInference::new(zoo::dense_by_name(name).unwrap(), node.clone(), 1);
        let zero = z.run_max_batch().unwrap();
        let gpu = z.gpu_only();
        let cpu = z.cpu_only(zero.batch);
        let show = |label: &str, r: Option<deepspeed_inference::zero::engine::ZeroReport>| match r {
            Some(r) => println!(
                "  {name} {label:<15}: batch {:>3}, {:>6.1} TFLOPS",
                r.batch,
                r.flops_per_gpu / 1e12
            ),
            None => println!("  {name} {label:<15}: out of memory"),
        };
        show("ZeRO-Inference", Some(zero));
        show("GPU-only", gpu);
        show("CPU-only", cpu);
    }
}
