//! # deepspeed-inference — a Rust reproduction of *DeepSpeed Inference:
//! Enabling Efficient Inference of Transformer Models at Unprecedented
//! Scale* (SC 2022)
//!
//! This is the umbrella crate: it re-exports the public API of every
//! subsystem. See `DESIGN.md` for the system inventory and per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use deepspeed_inference::{EngineConfig, InferenceEngine};
//! use deepspeed_inference::zoo;
//! use deepspeed_inference::ClusterSpec;
//!
//! let model = zoo::dense_by_name("GPT-J-6B").unwrap();
//! let engine = InferenceEngine::new(EngineConfig::deepspeed(
//!     model,
//!     ClusterSpec::dgx_a100(1),
//!     1, // tensor-parallel degree
//!     1, // pipeline stages
//! ));
//! let run = engine.generation(/*batch*/ 1, /*prompt*/ 128, /*gen*/ 8);
//! assert!(run.total_latency > 0.0);
//! ```

pub use dsi_core::*;

/// Model zoo (Tables I and II of the paper).
pub use dsi_model::zoo;

/// Substrate crates, re-exported for advanced use.
pub use dsi_baselines as baselines;
pub use dsi_kernels as kernels;
pub use dsi_model as model;
pub use dsi_moe as moe;
pub use dsi_parallel as parallel;
pub use dsi_serve as serve;
pub use dsi_sim as sim;
pub use dsi_verify as verify;
pub use dsi_zero as zero;
