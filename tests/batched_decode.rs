//! Batched decode equivalence: the M-row fast path must be an
//! *implementation detail* — no batching configuration (ragged prompt
//! lengths, early EOS, any M) may change a single emitted token.
//!
//! Two oracles anchor the property:
//! * `BatchSession::step_reference` — the original serial per-sequence
//!   reference loop the greedy route retired;
//! * a solo `FastSession` per prompt — the batch-of-one packed path, which
//!   the M-row kernels are bit-identical to by construction (every output
//!   element accumulates over k sequentially in one register lane).

use deepspeed_inference::model::batched::BatchSession;
use deepspeed_inference::model::fast::PackedModel;
use deepspeed_inference::model::reference::GptModel;
use deepspeed_inference::model::sampling::{Sampler, SamplerConfig};
use deepspeed_inference::zoo;
use proptest::prelude::*;

fn model(layers: usize, seed: u64) -> GptModel {
    GptModel::random(zoo::tiny(layers), seed)
}

/// Build `m` ragged prompts from a generated pool of lengths and tokens.
fn build_prompts(m: usize, lens: &[usize], tokens: &[usize]) -> Vec<Vec<usize>> {
    let mut prompts = Vec::with_capacity(m);
    let mut cursor = 0usize;
    for i in 0..m {
        let len = lens[i % lens.len()];
        let p: Vec<usize> =
            (0..len).map(|j| tokens[(cursor + j) % tokens.len()]).collect();
        cursor += len;
        prompts.push(p);
    }
    prompts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The greedy fast route through `BatchSession::step` emits exactly the
    /// tokens of the retired serial reference loop, across ragged lengths,
    /// batch sizes M ∈ {1, 2, 4, 8}, and early EOS termination.
    #[test]
    fn batch_session_greedy_matches_reference_loop(
        mi in 0usize..4,
        seed in 0u64..500,
        max_new in 1usize..6,
        use_eos in 0usize..2,
        lens in prop::collection::vec(1usize..7, 8..9),
        tokens in prop::collection::vec(0usize..101, 24..49),
    ) {
        let batch = [1usize, 2, 4, 8][mi];
        let prompts = build_prompts(batch, &lens, &tokens);
        let m = model(2, seed);
        // Pick an EOS the model can actually hit: the first greedy token of
        // prompt 0 (forces at least one sequence to terminate early).
        let eos = if use_eos == 1 {
            Some(m.generate(&prompts[0], 1)[0])
        } else {
            None
        };

        let mut fast = BatchSession::new(&m, &prompts, max_new);
        fast.eos = eos;
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        fast.run(&mut sampler); // step() routes greedy through forward_rows

        let mut refr = BatchSession::new(&m, &prompts, max_new);
        refr.eos = eos;
        let mut sampler = Sampler::new(SamplerConfig::greedy(), 0);
        refr.prompt(&mut sampler);
        let mut guard = 0;
        while refr.step_reference(&mut sampler) > 0 {
            guard += 1;
            prop_assert!(guard <= max_new + 1, "runaway reference loop");
        }

        for i in 0..prompts.len() {
            prop_assert_eq!(
                fast.output(i),
                refr.output(i),
                "sequence {} diverged (eos={:?})",
                i,
                eos
            );
        }
    }

    /// `BatchedFastSession` (packed weights end to end, M-row steps) is
    /// token-identical to running each prompt alone through `FastSession`.
    #[test]
    fn batched_fast_session_matches_per_sequence(
        mi in 0usize..4,
        seed in 0u64..500,
        max_new in 1usize..8,
        lens in prop::collection::vec(1usize..7, 8..9),
        tokens in prop::collection::vec(0usize..101, 24..49),
    ) {
        let batch = [1usize, 2, 4, 8][mi];
        let prompts = build_prompts(batch, &lens, &tokens);
        let m = model(2, seed);
        let pm = PackedModel::pack(&m);
        let mut sess = pm.batched_session(&prompts, max_new);
        sess.run();
        for (i, p) in prompts.iter().enumerate() {
            let want = pm.session(p.len()).generate(p, max_new);
            prop_assert_eq!(sess.output(i), &want[..], "sequence {} diverged", i);
        }
    }
}

/// Sampled (non-greedy) decoding must keep using the reference loop — RNG
/// consumption order is observable, so `step` with temperature > 0 matches
/// `step_reference` with an identically-seeded sampler.
#[test]
fn sampled_path_still_uses_reference_loop() {
    let m = model(2, 77);
    let prompts = vec![vec![1, 2, 3], vec![9, 8]];
    let cfg = SamplerConfig { temperature: 0.8, top_k: 0, top_p: 1.0 };

    let mut a = BatchSession::new(&m, &prompts, 4);
    let mut sa = Sampler::new(cfg, 42);
    a.run(&mut sa);

    let mut b = BatchSession::new(&m, &prompts, 4);
    let mut sb = Sampler::new(cfg, 42);
    b.prompt(&mut sb);
    while b.step_reference(&mut sb) > 0 {}

    for i in 0..prompts.len() {
        assert_eq!(a.output(i), b.output(i), "sequence {i}");
    }
}
