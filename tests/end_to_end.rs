//! Cross-crate integration tests: each block asserts the qualitative
//! orderings a figure of the paper rests on, through the public API only.

use deepspeed_inference::baselines::exec::ExecStyle;
use deepspeed_inference::zoo;
use deepspeed_inference::{
    ClusterSpec, EngineConfig, ExecConfig, InferenceEngine, MoeSystem, MoeSystemKind, NodeSpec,
};
use deepspeed_inference::sim::topology::Topology;
use deepspeed_inference::zero::engine::ZeroInference;

#[test]
fn fig6_orderings_hold_for_every_model() {
    // For every Fig. 6 model/batch: FT-FP16 >= DS-FP16 >= DS-INT8 latency.
    let topo = Topology::new(ClusterSpec::dgx_a100(2));
    let ft = ExecStyle::faster_transformer();
    let ds = ExecStyle::deepspeed();
    for e in zoo::table1().into_iter().filter(|e| e.fig6_tp > 0) {
        for batch in [1usize, 8, 32] {
            let t_ft = ft
                .generation_latency(&topo, &e.config, e.fig6_tp, batch, 128, 8, &ExecConfig::fp16(false))
                .total;
            let t_16 = ds
                .generation_latency(&topo, &e.config, e.fig6_tp, batch, 128, 8, &ExecConfig::fp16(true))
                .total;
            let t_8 = ds
                .generation_latency(&topo, &e.config, e.fig6_tp, batch, 128, 8, &ExecConfig::int8(true))
                .total;
            assert!(t_16 < t_ft, "{} b{batch}: DS-FP16 must beat FT", e.config.name);
            assert!(t_8 < t_16, "{} b{batch}: INT8 must beat FP16", e.config.name);
            // Shape sanity: the FP16 gain stays in the paper's ballpark.
            let s = t_ft / t_16;
            assert!(s < 2.5, "{} b{batch}: speedup {s:.2} out of band", e.config.name);
        }
    }
}

#[test]
fn fig7_speedup_band() {
    for cfg in zoo::table2() {
        let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed).token_latency(8).total;
        let base = MoeSystem::new(cfg.clone(), MoeSystemKind::PyTorchBaseline)
            .token_latency(8)
            .total;
        let s = base / ds;
        assert!(s > 1.5 && s < 10.0, "{}: speedup {s:.2}", cfg.name);
    }
}

#[test]
fn fig8_deepspeed_wins_throughput() {
    for (name, nodes, tp, pp) in [("LM-175B", 2usize, 8usize, 2usize), ("LM-530B", 5, 8, 5)] {
        let model = zoo::dense_by_name(name).unwrap();
        let cluster = ClusterSpec::dgx_a100(nodes);
        let ds = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), tp, pp))
            .best_throughput(512, 50)
            .unwrap();
        let ft = InferenceEngine::new(EngineConfig::faster_transformer(model, cluster, tp, pp))
            .best_throughput(512, 50)
            .unwrap();
        let gain = ds.tokens_per_s / ft.tokens_per_s;
        assert!(gain > 1.3 && gain < 3.0, "{name}: gain {gain:.2}");
    }
}

#[test]
fn fig9_model_scale_claims() {
    let node = NodeSpec::lambda_a6000();
    // 530B runs on one A6000 at >45% of peak.
    let z = ZeroInference::new(zoo::dense_by_name("LM-530B").unwrap(), node.clone(), 1);
    let r = z.run_max_batch().unwrap();
    assert!(r.flops_per_gpu / node.gpu.peak_fp16 > 0.45);
    // GPU-only tops out at 20B: 50B+ has no GPU-only configuration.
    let z50 = ZeroInference::new(zoo::dense_by_name("GPT-50B").unwrap(), node, 1);
    assert!(z50.gpu_only().is_none());
    assert!(z50.run(1).is_some());
}

#[test]
fn fig10b_every_optimization_helps() {
    let model = zoo::dense_by_name("LM-530B").unwrap();
    let cluster = ClusterSpec::dgx_a100(5);
    let steps: [[bool; 4]; 4] = [
        [false, false, false, false],
        [true, false, false, false],
        [true, true, false, false],
        [true, true, true, true],
    ];
    let mut prev = 0.0;
    for [sched, hybrid, offload, odd_even] in steps {
        let mut cfg = EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 5);
        cfg.inference_schedule = sched;
        cfg.hybrid_schedule = hybrid;
        cfg.kv_offload = offload;
        cfg.odd_even_offload = odd_even;
        let r = InferenceEngine::new(cfg).best_throughput(512, 50).unwrap();
        assert!(
            r.tokens_per_s > prev,
            "cumulative step must not regress: {} <= {prev}",
            r.tokens_per_s
        );
        prev = r.tokens_per_s;
    }
}

#[test]
fn fig11_bandwidth_scaling_ordering() {
    let cfg = zoo::table2().into_iter().next().unwrap();
    let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed);
    let base = MoeSystem::new(cfg, MoeSystemKind::PyTorchBaseline);
    let mut prev_ds = 0.0;
    for gpus in [8usize, 16, 32, 64, 128] {
        let b_ds = ds.weak_scaling_bandwidth(gpus, 8);
        let b_base = base.weak_scaling_bandwidth(gpus, 8);
        assert!(b_ds > b_base, "{gpus} GPUs: DS must sustain more bandwidth");
        assert!(b_ds > prev_ds, "{gpus} GPUs: DS bandwidth must keep growing");
        prev_ds = b_ds;
    }
}

#[test]
fn fig12_encoder_speedups() {
    let gpu = deepspeed_inference::GpuSpec::a100_40gb();
    let cfg = ExecConfig::fp16(true);
    for m in zoo::encoders() {
        let t_et = ExecStyle::et().encoder_forward_time(&gpu, &m, 1, 128, &cfg);
        let t_ds = ExecStyle::deepspeed().encoder_forward_time(&gpu, &m, 1, 128, &cfg);
        let s = t_et / t_ds;
        assert!(s > 1.2 && s < 2.2, "{}: {s:.2}", m.name);
    }
}

#[test]
fn fig13_hybrid_prompt_gains() {
    let model = zoo::dense_by_name("LM-175B").unwrap();
    let cluster = ClusterSpec::dgx_a100(2);
    let ds = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster.clone(), 8, 2));
    let ft = InferenceEngine::new(EngineConfig::faster_transformer(model, cluster, 8, 2));
    let p_ds = ds.generation(24, 512, 8).prompt_latency;
    let p_ft = ft.generation(24, 512, 8).prompt_latency;
    assert!(p_ds < p_ft, "hybrid must cut prompt latency: {p_ds} vs {p_ft}");
}

#[test]
fn whole_zoo_runs_single_gpu_where_it_fits() {
    for e in zoo::table1() {
        if e.config.weight_bytes(deepspeed_inference::DType::Fp16) < 35e9 {
            let engine = InferenceEngine::new(EngineConfig::deepspeed(
                e.config.clone(),
                ClusterSpec::dgx_a100(1),
                1,
                1,
            ));
            let r = engine.generation(1, 128, 8);
            assert!(r.total_latency > 0.0 && r.total_latency < 1.0, "{}", e.config.name);
        }
    }
}
