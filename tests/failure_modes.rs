//! Failure-injection tests: misconfigurations must be rejected loudly, and
//! out-of-resource situations must surface as typed absences (`None`),
//! never as wrong numbers.

use deepspeed_inference::kernels::fusion::{fuse, FusionError, FusionPlan};
use deepspeed_inference::kernels::graph::transformer_layer_ops;
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::model::reference::{GptModel, KvCache};
use deepspeed_inference::model::zoo;
use deepspeed_inference::moe::layer::{ep_forward, MoeLayer};
use deepspeed_inference::parallel::tp::shard_layer;
use deepspeed_inference::sim::collectives::CommGroup;
use deepspeed_inference::sim::hw::DType;
use deepspeed_inference::zero::engine::ZeroInference;
use deepspeed_inference::{ClusterSpec, EngineConfig, GptConfig, InferenceEngine, NodeSpec};

#[test]
#[should_panic(expected = "mapping needs")]
fn engine_rejects_oversubscribed_cluster() {
    let model = zoo::dense_by_name("GPT-13B").unwrap();
    InferenceEngine::new(EngineConfig::deepspeed(model, ClusterSpec::dgx_a100(1), 8, 4));
}

#[test]
#[should_panic(expected = "layers must split")]
fn engine_rejects_uneven_pipeline_split() {
    // 105 layers cannot split into 4 stages.
    let model = zoo::dense_by_name("LM-530B").unwrap();
    InferenceEngine::new(EngineConfig::deepspeed(model, ClusterSpec::dgx_a100(8), 8, 4));
}

#[test]
fn engine_reports_zero_batch_when_weights_do_not_fit() {
    // 530B on 8×40GB GPUs: weight shard alone exceeds HBM.
    let model = zoo::dense_by_name("LM-530B").unwrap();
    let e = InferenceEngine::new(EngineConfig::deepspeed(model, ClusterSpec::dgx_a100(1), 8, 1));
    assert_eq!(e.max_batch(512, 50), 0);
    assert!(e.best_throughput(512, 50).is_none());
}

#[test]
fn zero_inference_none_for_impossible_model() {
    let huge = GptConfig::new("too-big", 65536, 200, 512);
    let z = ZeroInference::new(huge, NodeSpec::lambda_a6000(), 1);
    assert!(z.tier().is_none());
    assert!(z.run(1).is_none());
    assert!(z.gpu_only().is_none());
    assert!(z.cpu_only(1).is_none());
}

#[test]
#[should_panic(expected = "divisible")]
fn tensor_parallel_rejects_indivisible_heads() {
    let lw = deepspeed_inference::model::reference::LayerWeights::random(64, 1);
    shard_layer(&lw, 4, 8); // 4 heads cannot split 8 ways
}

#[test]
#[should_panic(expected = "evenly")]
fn expert_parallel_rejects_uneven_tokens() {
    let layer = MoeLayer::random(16, 4, 1, 1);
    let x = Tensor::randn(&[7, 16], 1.0, 2); // 7 tokens on 2 ranks
    ep_forward(&layer, &x, 2, 4);
}

#[test]
fn fusion_rejects_gapped_partitions_and_bad_axes() {
    let ops = transformer_layer_ops(1, 1, 64, 256, 4, DType::Fp16);
    let gapped = FusionPlan {
        regions: vec![(0, 4), (5, 12)],
    };
    assert_eq!(
        fuse(&ops, &gapped, DType::Fp16).unwrap_err(),
        FusionError::BadPartition
    );
    let overlong = FusionPlan {
        regions: vec![(0, 13)],
    };
    assert_eq!(
        fuse(&ops, &overlong, DType::Fp16).unwrap_err(),
        FusionError::BadPartition
    );
}

#[test]
#[should_panic(expected = "equal buffer lengths")]
fn allreduce_rejects_ragged_buffers() {
    let mut g = CommGroup::new(vec![vec![1.0, 2.0], vec![3.0]]);
    g.allreduce_sum();
}

#[test]
#[should_panic(expected = "divisible by world size")]
fn alltoall_rejects_unsplittable_buffers() {
    let mut g = CommGroup::new(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
    g.alltoall();
}

#[test]
#[should_panic(expected = "max_seq")]
fn model_rejects_context_overflow() {
    let m = GptModel::random(zoo::tiny(1), 1);
    let mut cache = KvCache::new(1, 64);
    // Fill the context, then push one past max_seq.
    let ids: Vec<usize> = (0..64).map(|i| i % 101).collect();
    m.forward(&ids, &mut cache);
    m.forward(&[1], &mut cache);
}

#[test]
#[should_panic(expected = "out of vocab")]
fn model_rejects_out_of_vocab_token() {
    let m = GptModel::random(zoo::tiny(1), 1);
    m.forward_full(&[1000]);
}

#[test]
fn planner_degrades_gracefully() {
    use deepspeed_inference::planner::{plan, Objective};
    let model = zoo::dense_by_name("LM-530B").unwrap();
    // One node: no plan. Five nodes: a plan exists.
    assert!(plan(&model, &ClusterSpec::dgx_a100(1), 512, 50, Objective::MaxThroughput, None).is_none());
    assert!(plan(&model, &ClusterSpec::dgx_a100(5), 512, 50, Objective::MaxThroughput, None).is_some());
}
