//! Numerical equivalence tests across the parallel implementations: the
//! reproductions of the paper's *correctness-preserving* transformations
//! must be bit-compatible (up to f32 accumulation order) with the reference.

use deepspeed_inference::kernels::quant::{matmul_quantized, QuantizedMatrix};
use deepspeed_inference::kernels::sbi::{gemm_sbi, SbiLayout, SbiPlan};
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::kernels::ops;
use deepspeed_inference::model::reference::{layer_forward, GptModel, KvCache, LayerKv};
use deepspeed_inference::model::zoo;
use deepspeed_inference::moe::layer::{ep_forward, MoeLayer};
use deepspeed_inference::parallel::tp::{shard_layer, tp_layer_forward, tp_layer_forward_into};
use deepspeed_inference::parallel::tp_exec::TpPackedModel;
use deepspeed_inference::DType;

/// Full-model tensor parallelism: shard every layer, run the whole stack
/// with functional all-reduces, and compare logits with the reference.
#[test]
fn tensor_parallel_full_model_equivalence() {
    let cfg = zoo::tiny(3);
    let model = GptModel::random(cfg.clone(), 99);
    let prompt = [3usize, 14, 15, 92];

    // Reference.
    let mut cache = KvCache::new(cfg.layers, cfg.hidden);
    let want = model.forward(&prompt, &mut cache);

    // TP=4: shard each layer, run embeddings replicated.
    let tp = 4;
    let shards: Vec<_> = model
        .layers
        .iter()
        .map(|lw| shard_layer(lw, cfg.heads, tp))
        .collect();
    let mut kvs: Vec<Vec<LayerKv>> = (0..cfg.layers)
        .map(|_| (0..tp).map(|_| LayerKv::empty(cfg.hidden / tp)).collect())
        .collect();

    let mut x = ops::embedding(&model.wte, &prompt);
    for (i, row) in (0..prompt.len()).enumerate() {
        let pos = model.wpe.row(row).to_vec();
        for (a, b) in x.row_mut(i).iter_mut().zip(pos) {
            *a += b;
        }
    }
    // Ping-pong between `x` and one caller-owned output buffer: the layer
    // reduces into `out` in place, no per-layer CommGroup or clone.
    let mut out = Tensor::zeros(x.shape());
    for l in 0..cfg.layers {
        tp_layer_forward_into(&shards[l], &x, &mut kvs[l], &mut out);
        std::mem::swap(&mut x, &mut out);
    }
    let x = ops::layernorm(&x, &model.lnf_g, &model.lnf_b, 1e-5);
    let got = ops::matmul_transb(&x, &model.wte);

    assert!(
        got.allclose(&want, 2e-3),
        "TP full-model logits diverge: {}",
        got.max_abs_diff(&want)
    );
    // Greedy decisions must agree exactly.
    assert_eq!(ops::argmax_rows(&got), ops::argmax_rows(&want));
}

/// The executed (threaded) TP engine decodes token-identically to the
/// single-thread fast path, which itself matches the reference — closing
/// the loop reference → fast → tp_exec at every TP degree.
#[test]
fn tp_exec_session_matches_fast_session_tokens() {
    use deepspeed_inference::model::fast::PackedModel;
    use std::sync::Arc;

    let model = GptModel::random(zoo::tiny(2), 123);
    let pm = PackedModel::pack(&model);
    let want = pm.session(4).generate(&[3, 14, 15, 92], 12);
    assert_eq!(want, model.generate(&[3, 14, 15, 92], 12));
    for tp in [1usize, 2, 4] {
        let tpm = Arc::new(TpPackedModel::shard(&model, tp));
        let got = tpm.session(4).generate(&[3, 14, 15, 92], 12);
        assert_eq!(got, want, "tp {tp}");
    }
}

/// KV-cached generation equals full recomputation across multiple steps.
#[test]
fn kv_cache_multi_step_equivalence() {
    let cfg = zoo::tiny(2);
    let model = GptModel::random(cfg.clone(), 7);
    let seq = [5usize, 9, 13, 21, 34, 55];
    let mut cache = KvCache::new(cfg.layers, cfg.hidden);
    // Incremental: one token at a time.
    let mut last_inc = None;
    for &t in &seq {
        last_inc = Some(model.forward(&[t], &mut cache));
    }
    // Full recompute.
    let full = model.forward_full(&seq);
    let want = full.row_slice(seq.len() - 1, seq.len());
    let got = last_inc.unwrap();
    assert!(
        got.allclose(&want, 5e-3),
        "incremental diverges: {}",
        got.max_abs_diff(&want)
    );
}

/// Sharded-layer KV caches jointly hold exactly the reference cache.
#[test]
fn tp_kv_cache_partitions_reference_cache() {
    let lw = deepspeed_inference::model::reference::LayerWeights::random(64, 3);
    let shards = shard_layer(&lw, 4, 2);
    let x = Tensor::randn(&[3, 64], 1.0, 4);
    let mut kv_ref = LayerKv::empty(64);
    layer_forward(&lw, &x, &mut kv_ref, 4);
    let mut kvs = vec![LayerKv::empty(32), LayerKv::empty(32)];
    tp_layer_forward(&shards, &x, &mut kvs);
    let joint_k = Tensor::cat_cols(&[&kvs[0].k, &kvs[1].k]);
    assert!(
        joint_k.allclose(&kv_ref.k, 1e-4),
        "sharded K caches must concatenate to the reference"
    );
}

/// Expert parallelism with real all-to-alls equals the single-device MoE
/// layer for multiple world sizes.
#[test]
fn moe_expert_parallel_equivalence_scaling() {
    let layer = MoeLayer::random(24, 8, 2, 41);
    let x = Tensor::randn(&[24, 24], 1.0, 42);
    let reference = layer.forward(&x, 24);
    for ranks in [1usize, 2, 4, 8] {
        let got = ep_forward(&layer, &x, ranks, 24 / ranks);
        assert!(
            got.allclose(&reference, 1e-3),
            "EP={ranks} diverges by {}",
            got.max_abs_diff(&reference)
        );
    }
}

/// SBI-GeMM (with its cache-line weight layout and two-phase reduction)
/// equals the straightforward GEMM for both kernel plans.
#[test]
fn sbi_gemm_equivalence_both_plans() {
    for (k, n) in [(256usize, 64usize), (512, 4096)] {
        let x = Tensor::randn(&[2, k], 1.0, 50);
        let w = Tensor::randn(&[k, n], 0.2, 51);
        let layout = SbiLayout::from_weights(&w, DType::Fp16);
        let plan = SbiPlan::choose(k, n, 108);
        let got = gemm_sbi(&x, &layout, plan);
        let want = ops::matmul(&x, &w);
        assert!(got.allclose(&want, 1e-3), "k={k} n={n} plan={plan:?}");
    }
}

/// INT8 generation pipeline: quantized GEMMs keep greedy decoding stable on
/// a small model (the INT8 path's correctness story).
#[test]
fn int8_quantized_projection_preserves_argmax() {
    let cfg = zoo::tiny(1);
    let model = GptModel::random(cfg.clone(), 77);
    let x = Tensor::randn(&[4, cfg.hidden], 1.0, 78);
    // Quantize the first layer's FFN weight and compare outputs.
    let w = &model.layers[0].w_ff1;
    let q = QuantizedMatrix::quantize(w, 64);
    let exact = ops::matmul(&x, w);
    let approx = matmul_quantized(&x, &q);
    assert!(
        exact.max_abs_diff(&approx) < 0.05,
        "INT8 error too large: {}",
        exact.max_abs_diff(&approx)
    );
    // Relative error of the whole projection stays under 1%.
    let rel = deepspeed_inference::kernels::quant::quantized_gemm_rel_error(&x, w, 64);
    assert!(rel < 0.01, "relative INT8 GEMM error {rel}");
    // Where the exact output has a clear winner (not a near-tie), INT8 must
    // pick the same one — the decision-stability property greedy decoding
    // relies on.
    for r in 0..x.rows() {
        let row = exact.row(r);
        let arg = ops::argmax_rows(&exact.row_slice(r, r + 1))[0];
        let top = row[arg];
        let runner_up = row
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != arg)
            .map(|(_, &v)| v)
            .fold(f32::NEG_INFINITY, f32::max);
        if top - runner_up > 2.0 * q.max_error_bound() * (x.cols() as f32).sqrt() {
            let arg8 = ops::argmax_rows(&approx.row_slice(r, r + 1))[0];
            assert_eq!(arg, arg8, "clear winner flipped under INT8 in row {r}");
        }
    }
}
