//! Property-based equivalence of the executed Deep-Fusion fast path
//! against the naive reference operators: blocked/panel-packed GEMM vs
//! `ops::matmul`, each fused region kernel vs its unfused composition, the
//! amortized in-place KV cache vs `cat_rows` rebuilds, and full greedy
//! decode token-for-token.

use deepspeed_inference::kernels::blocked::{self, PackedB};
use deepspeed_inference::kernels::fused;
use deepspeed_inference::kernels::ops;
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::model::fast::PackedModel;
use deepspeed_inference::model::reference::GptModel;
use deepspeed_inference::zoo;
use proptest::prelude::*;

fn max_abs(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Panel-packed blocked GEMM agrees with the naive reference for any
    /// shape, including ragged tails past the 32-column panel width.
    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..5,
        k in 1usize..70,
        n in 1usize..70,
        seed in 0u64..1000,
    ) {
        let a = Tensor::randn(&[m, k], 1.0, seed);
        let b = Tensor::randn(&[k, n], 1.0, seed + 1);
        let want = ops::matmul(&a, &b);
        let got = blocked::matmul_packed(&a, &PackedB::pack(&b));
        prop_assert!(
            got.allclose(&want, 1e-4),
            "({m},{k},{n}) diff {}", got.max_abs_diff(&want)
        );
    }

    /// Fused layernorm→GEMM→bias (Fig. 1(c) region 1) equals the unfused
    /// composition.
    #[test]
    fn fused_ln_gemm_matches_unfused(
        m in 1usize..4,
        h8 in 1usize..9,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let h = h8 * 8;
        let x = Tensor::randn(&[m, h], 1.0, seed);
        let g = Tensor::randn(&[h], 0.3, seed + 1);
        let b = Tensor::randn(&[h], 0.1, seed + 2);
        let w = Tensor::randn(&[h, n], 0.5, seed + 3);
        let bias = Tensor::randn(&[n], 0.1, seed + 4);
        let mut want = ops::matmul(&ops::layernorm(&x, &g, &b, 1e-5), &w);
        ops::add_bias(&mut want, &bias);
        let pw = PackedB::pack(&w);
        let mut normed = vec![0.0f32; m * h];
        let mut got = Tensor::zeros(&[m, n]);
        fused::ln_matmul_bias_into(
            x.data(), m, g.data(), b.data(), 1e-5, &pw, bias.data(),
            &mut normed, got.data_mut(),
        );
        prop_assert!(got.allclose(&want, 1e-5), "diff {}", got.max_abs_diff(&want));
    }

    /// Fused bias+GeLU (region 4 tail) and bias+residual (regions 3/5
    /// tails) equal their unfused two-pass compositions.
    #[test]
    fn fused_epilogues_match_unfused(
        m in 1usize..4,
        n in 1usize..50,
        seed in 0u64..1000,
    ) {
        let base = Tensor::randn(&[m, n], 1.0, seed);
        let bias = Tensor::randn(&[n], 0.5, seed + 1);
        let res = Tensor::randn(&[m, n], 1.0, seed + 2);

        let mut want = base.clone();
        ops::add_bias(&mut want, &bias);
        ops::gelu(&mut want);
        let mut got = base.clone();
        fused::bias_gelu_inplace(got.data_mut(), bias.data());
        prop_assert!(max_abs(got.data(), want.data()) <= 1e-5);

        let mut want = base.clone();
        ops::add_bias(&mut want, &bias);
        ops::add_inplace(&mut want, &res);
        let mut got = base.clone();
        fused::bias_residual_inplace(got.data_mut(), bias.data(), res.data());
        prop_assert!(max_abs(got.data(), want.data()) <= 1e-5);
    }

    /// Streaming (online-softmax) attention with no scores buffer equals
    /// the reference score-matrix attention.
    #[test]
    fn streaming_attention_matches_reference(
        t_new in 1usize..5,
        extra_ctx in 0usize..12,
        heads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let h = 8 * heads;
        let causal_offset = extra_ctx;
        let t_ctx = t_new + extra_ctx;
        let q = Tensor::randn(&[t_new, h], 1.0, seed);
        let k = Tensor::randn(&[t_ctx, h], 1.0, seed + 1);
        let v = Tensor::randn(&[t_ctx, h], 1.0, seed + 2);
        let want = ops::attention(&q, &k, &v, heads, causal_offset);
        let mut got = Tensor::zeros(&[t_new, h]);
        fused::attention_into(q.data(), t_new, &k, &v, heads, causal_offset, got.data_mut());
        prop_assert!(
            got.allclose(&want, 1e-5),
            "diff {}", got.max_abs_diff(&want)
        );
    }

    /// Paged attention through a scattered, non-identity page table is
    /// **bit-identical** to contiguous attention over the same K/V values,
    /// for random shapes: `attention_row_paged_into` runs the same
    /// monomorphized FLOP sequence as the contiguous row kernel, so the
    /// comparison is exact equality, not a tolerance.
    #[test]
    fn paged_attention_bitwise_matches_contiguous(
        heads in 1usize..4,
        hd8 in 1usize..3,
        page_tokens in 1usize..5,
        t_ctx in 1usize..18,
        seed in 0u64..1000,
    ) {
        let h = 8 * hd8 * heads;
        let k = Tensor::randn(&[t_ctx, h], 0.7, seed);
        let v = Tensor::randn(&[t_ctx, h], 0.7, seed + 1);
        let q = Tensor::randn(&[t_ctx, h], 1.0, seed + 2);
        // Contiguous reference: every row i attends to keys 0..=i.
        let mut want = Tensor::zeros(&[t_ctx, h]);
        fused::attention_seq_into(q.data(), h, t_ctx, &k, &v, heads, 0, want.data_mut());
        // Scatter the same rows through a reversed (maximally non-identity)
        // page table into arenas with spare pages on both sides.
        let pages_needed = t_ctx.div_ceil(page_tokens);
        let pages_total = pages_needed + 3;
        let table: Vec<u32> = (0..pages_needed)
            .map(|i| (pages_total - 1 - i) as u32)
            .collect();
        let mut ka = vec![0.0f32; pages_total * page_tokens * h];
        let mut va = vec![0.0f32; pages_total * page_tokens * h];
        for pos in 0..t_ctx {
            let r = table[pos / page_tokens] as usize * page_tokens + pos % page_tokens;
            ka[r * h..(r + 1) * h].copy_from_slice(&k.data()[pos * h..(pos + 1) * h]);
            va[r * h..(r + 1) * h].copy_from_slice(&v.data()[pos * h..(pos + 1) * h]);
        }
        let mut got = vec![0.0f32; h];
        for i in 0..t_ctx {
            let view = fused::PagedKvView {
                k: &ka,
                v: &va,
                pages: &table,
                page_tokens,
                len: i + 1,
                offset: i,
            };
            fused::attention_row_paged_into(&q.data()[i * h..(i + 1) * h], &view, heads, &mut got);
            prop_assert_eq!(
                &got[..],
                &want.data()[i * h..(i + 1) * h],
                "row {i} of ({t_ctx},{h}) pt={page_tokens} diverged"
            );
        }
    }

    /// The amortized in-place KV append (`push_rows` into reserved
    /// capacity) yields bit-identical tensors to `cat_rows` rebuilds, for
    /// any split of the same row stream.
    #[test]
    fn amortized_kv_matches_cat_rows(
        cols in 1usize..20,
        chunk_rows in prop::collection::vec(1usize..4, 1..10),
        seed in 0u64..1000,
    ) {
        let chunks: Vec<Tensor> = chunk_rows
            .iter()
            .enumerate()
            .map(|(i, &r)| Tensor::randn(&[r, cols], 1.0, seed + i as u64))
            .collect();
        // Seed semantics: rebuild by concatenation at every step.
        let mut rebuilt = Tensor::zeros(&[0, cols]);
        // Amortized: reserve once, append in place.
        let total: usize = chunk_rows.iter().sum();
        let mut amortized = Tensor::with_capacity_rows(total, cols);
        let base_ptr = amortized.data().as_ptr() as usize;
        for c in &chunks {
            rebuilt = Tensor::cat_rows(&[&rebuilt, c]);
            amortized.push_rows(c);
        }
        prop_assert_eq!(rebuilt.shape(), amortized.shape());
        prop_assert!(rebuilt.allclose(&amortized, 0.0));
        // And the reserved buffer never moved.
        prop_assert_eq!(amortized.data().as_ptr() as usize, base_ptr);
    }

    /// Full greedy decode: the packed/fused/amortized fast path emits
    /// exactly the same tokens as the reference model, for random weights
    /// and random prompts.
    #[test]
    fn fast_decode_matches_reference_decode(
        seed in 0u64..200,
        layers in 1usize..4,
        prompt in prop::collection::vec(0usize..101, 1..6),
        n_tokens in 1usize..10,
    ) {
        let model = GptModel::random(zoo::tiny(layers), seed);
        let want = model.generate(&prompt, n_tokens);
        let packed = PackedModel::pack(&model);
        let got = packed.session(prompt.len()).generate(&prompt, n_tokens);
        prop_assert_eq!(got, want);
    }
}
