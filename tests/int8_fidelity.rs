//! INT8 fidelity: the dequant-in-register fast path
//! (`QuantizedPackedModel`) against the FP32 packed path and the portable
//! scalar oracle.
//!
//! Three layers of guarantee, strongest first:
//! * **Bit-exactness** — the AVX2 INT8 microkernels round identically to
//!   the scalar oracle `matmul_quantized` (mul-then-add, group-outer
//!   order), so vectorization adds zero error on top of quantization.
//! * **Logit drift** — quantization error through a full forward stays
//!   under a fixed bound vs the FP32 packed path.
//! * **Greedy agreement** — decoded tokens mostly agree with FP32; decode
//!   never crashes or stalls regardless of seed.

use deepspeed_inference::kernels::blocked::{Epilogue, PanelWeights};
use deepspeed_inference::kernels::quant::{matmul_quantized, QuantizedMatrix, QuantizedPackedB};
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::model::fast::{PackedModel, QuantizedPackedModel};
use deepspeed_inference::model::reference::GptModel;
use deepspeed_inference::zoo;
use proptest::prelude::*;

/// Max absolute logit drift FP32 → INT8 on the tiny zoo model. Calibrated
/// against the long-standing `quantized.rs` bound (0.6 for one forward of
/// the reference INT8 model at group 32).
const MAX_LOGIT_DRIFT: f32 = 0.6;

/// Minimum aggregate greedy-token agreement rate FP32 vs INT8, pooled over
/// many random models. Per-seed agreement can legitimately drop to zero on
/// a near-flat logit tie (random weights have no real signal), so the gate
/// is on the pooled rate — a systematic quantization bug (wrong scale,
/// wrong group indexing) drags the pool far below this line.
const MIN_AGREE_RATE: f64 = 0.5;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AVX2 INT8 GEMM is bit-exact with the scalar oracle for every shape,
    /// group size, and batch size the dispatcher can choose.
    #[test]
    fn packed_int8_gemm_bit_exact_with_oracle(
        seed in 0u64..1000,
        m in 1usize..10,
        k in 1usize..48,
        n in 1usize..70,
        gi in 0usize..4,
    ) {
        let group = [7usize, 16, 32, 64][gi];
        let x = Tensor::randn(&[m, k], 1.0, seed);
        let w = Tensor::randn(&[k, n], 0.5, seed.wrapping_add(1));
        let q = QuantizedMatrix::quantize(&w, group);
        let b = QuantizedPackedB::from_matrix(&q);

        let want = matmul_quantized(&x, &q); // portable oracle
        let mut got = vec![0.0f32; m * n];
        b.gemm(x.data(), m, &mut got, Epilogue::None);
        for (i, (g, w)) in got.iter().zip(want.data()).enumerate() {
            prop_assert!(
                g.to_bits() == w.to_bits(),
                "element {} differs bitwise: {} vs {}",
                i, g, w
            );
        }
    }

    /// Full-model logit drift: INT8 packed forward vs FP32 packed forward
    /// stays under the calibrated bound for any random tiny model.
    #[test]
    fn int8_logit_drift_bounded(seed in 0u64..200) {
        let m = GptModel::random(zoo::tiny(2), seed);
        let fp = PackedModel::pack(&m);
        let q = QuantizedPackedModel::quantize_pack(&m, 32);
        let ids = [4usize, 8, 15, 16, 23];

        let mut fs = fp.session(ids.len());
        let want = fs.forward(&ids).to_vec();
        let mut qs = q.session(ids.len());
        let got = qs.forward(&ids).to_vec();

        let drift = want
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(
            drift < MAX_LOGIT_DRIFT,
            "logit drift {} exceeds {}",
            drift, MAX_LOGIT_DRIFT
        );
    }

}

/// Greedy agreement rate gate: pooled over many random tiny models, INT8
/// decode emits mostly the same tokens as FP32, and always runs to
/// completion.
#[test]
fn int8_greedy_agreement_rate() {
    let prompt = [1usize, 2, 3, 4];
    let gen = 12usize;
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in 0..24u64 {
        let m = GptModel::random(zoo::tiny(2), seed);
        let fp = PackedModel::pack(&m);
        let q = QuantizedPackedModel::quantize_pack(&m, 32);
        let a = fp.session(prompt.len()).generate(&prompt, gen);
        let b = q.session(prompt.len()).generate(&prompt, gen);
        assert_eq!(b.len(), gen, "seed {seed}: INT8 decode under-generated");
        agree += a.iter().zip(&b).filter(|(x, y)| x == y).count();
        total += gen;
    }
    let rate = agree as f64 / total as f64;
    assert!(
        rate >= MIN_AGREE_RATE,
        "pooled greedy agreement {rate:.2} below {MIN_AGREE_RATE}"
    );
}

/// The INT8 weight stream is under half the FP32 stream — the Sec. III-D
/// bandwidth claim the decode bench's throughput ratio rests on.
#[test]
fn int8_stream_bytes_under_half_of_fp32() {
    let m = GptModel::random(zoo::tiny(4), 9);
    let fp = PackedModel::pack(&m);
    let q = QuantizedPackedModel::quantize_pack(&m, 64);
    let ratio = q.weight_stream_bytes() as f64 / fp.weight_stream_bytes() as f64;
    assert!(ratio < 0.5, "INT8/FP32 stream ratio {ratio:.3}");
}

/// Batched INT8 decode is step-for-step identical to solo INT8 decode —
/// the batching invariant holds per dtype, not just for FP32.
#[test]
fn batched_int8_matches_per_sequence_int8() {
    let m = GptModel::random(zoo::tiny(2), 55);
    let q = QuantizedPackedModel::quantize_pack(&m, 32);
    let prompts = vec![vec![1, 2, 3], vec![7], vec![9, 8, 7, 6, 5]];
    let mut sess = q.batched_session(&prompts, 6);
    sess.run();
    for (i, p) in prompts.iter().enumerate() {
        let want = q.session(p.len()).generate(p, 6);
        assert_eq!(sess.output(i), &want[..], "sequence {i}");
    }
}
