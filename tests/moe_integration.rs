//! Cross-crate MoE integration: the functional MoE-GPT, expert slicing, the
//! routing metrics, and the system-level latency model interacting.

use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::model::reference::{GptModel, KvCache};
use deepspeed_inference::model::zoo;
use deepspeed_inference::moe::gating::top_k_gating;
use deepspeed_inference::moe::layer::{ep_forward_padded, MoeLayer};
use deepspeed_inference::moe::moe_model::MoeGptModel;
use deepspeed_inference::moe::slicing::{slice_expert, sliced_expert_forward};
use deepspeed_inference::{MoeSystem, MoeSystemKind};

#[test]
fn moe_gpt_generation_under_expert_parallelism() {
    // Full-model greedy generation with every MoE block running
    // expert-parallel must reproduce the single-device token stream.
    let base = GptModel::random(zoo::tiny(4), 7);
    let m = MoeGptModel::from_base(base, 2, 4, 1, 32, 8);
    let prompt = [1usize, 2, 3];
    let want = m.generate(&prompt, 5);

    // EP generation loop by hand (forward_ep + argmax).
    let mut cache = KvCache::new(4, 64);
    let logits = m.forward_ep(&prompt, &mut cache, 2);
    let mut next = deepspeed_inference::kernels::ops::argmax_rows(
        &logits.row_slice(logits.rows() - 1, logits.rows()),
    )[0];
    let mut got = vec![next];
    for _ in 1..5 {
        let logits = m.forward_ep(&[next], &mut cache, 2);
        next = deepspeed_inference::kernels::ops::argmax_rows(&logits)[0];
        got.push(next);
    }
    assert_eq!(got, want);
}

#[test]
fn sliced_experts_inside_expert_parallelism() {
    // Expert-slicing composes with expert parallelism: slice every expert of
    // a layer, run the sliced experts, and match the plain layer forward.
    let layer = MoeLayer::random(32, 4, 1, 17);
    let x = Tensor::randn(&[8, 32], 1.0, 18);
    let want = layer.forward(&x, 8);

    // Build a layer whose experts compute through 2-way slicing.
    let logits = deepspeed_inference::kernels::ops::matmul(&x, &layer.gate_w);
    let gate = top_k_gating(&logits, 1, 8);
    let dispatched = deepspeed_inference::moe::routing::dispatch_dense(&x, &gate);
    let mut outs = Tensor::zeros(&[4 * 8, 32]);
    for (e, ex) in layer.experts.iter().enumerate() {
        let shards = slice_expert(ex, 2);
        let block = dispatched.row_slice(e * 8, (e + 1) * 8);
        let y = sliced_expert_forward(&shards, &block);
        for c in 0..8 {
            outs.row_mut(e * 8 + c).copy_from_slice(y.row(c));
        }
    }
    let got = deepspeed_inference::moe::routing::gather_dense(&outs, &gate);
    assert!(
        got.allclose(&want, 1e-4),
        "sliced-expert layer diverges by {}",
        got.max_abs_diff(&want)
    );
}

#[test]
fn padding_never_perturbs_real_tokens() {
    // ep_forward_padded on a token count that forces padding must equal the
    // unpadded single-rank result row-for-row.
    let layer = MoeLayer::random(16, 4, 2, 19);
    for s in [1usize, 3, 5, 7] {
        let x = Tensor::randn(&[s, 16], 1.0, 20 + s as u64);
        let want = layer.forward(&x, 16);
        let got = ep_forward_padded(&layer, &x, 4, 8);
        assert!(
            got.allclose(&want, 1e-4),
            "s={s}: diff {}",
            got.max_abs_diff(&want)
        );
    }
}

#[test]
fn routing_imbalance_interacts_with_capacity() {
    // With skewed routing, drop rate falls monotonically as capacity rises —
    // the knob the `ablate_capacity` harness sweeps.
    let mut logits = Tensor::randn(&[256, 8], 1.0, 23);
    for r in 0..256 {
        logits.row_mut(r)[0] += 2.0; // popular expert
    }
    let mut last_drop = 1.0f64;
    for cap in [8usize, 16, 32, 64, 256] {
        let d = top_k_gating(&logits, 1, cap);
        assert!(d.drop_rate() <= last_drop + 1e-12);
        last_drop = d.drop_rate();
        assert!(d.imbalance() >= 1.0);
    }
    assert_eq!(last_drop, 0.0, "full capacity drops nothing");
}

#[test]
fn system_latency_monotone_in_experts_activated() {
    // More tokens per step -> more active experts -> more expert read time
    // (and gating/all-to-all growth); total latency must be monotone.
    let cfg = zoo::table2().into_iter().nth(2).unwrap(); // 8B+MoE-128
    let sys = MoeSystem::new(cfg, MoeSystemKind::DeepSpeed);
    let l1 = sys.token_latency(1).total;
    let l8 = sys.token_latency(8).total;
    let l64 = sys.token_latency(64).total;
    assert!(l1 <= l8 + 1e-12 && l8 <= l64 + 1e-12, "{l1} {l8} {l64}");
    // But sub-linear: 64x the tokens must not cost 64x the time (that's the
    // entire point of batching over shared expert reads).
    assert!(l64 < 8.0 * l1, "l64 {l64} vs l1 {l1}");
}

#[test]
fn deepspeed_advantage_survives_every_batch_size() {
    let cfg = zoo::table2().into_iter().next().unwrap();
    let ds = MoeSystem::new(cfg.clone(), MoeSystemKind::DeepSpeed);
    let base = MoeSystem::new(cfg, MoeSystemKind::PyTorchBaseline);
    for batch in [1usize, 4, 8, 32, 128] {
        assert!(
            ds.token_latency(batch).total < base.token_latency(batch).total,
            "batch {batch}"
        );
    }
}
