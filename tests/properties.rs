//! Property-based tests (proptest) over the core invariants of the
//! reproduction: scheduling legality, communication-rewrite equivalence,
//! gating constraints, quantization bounds, and cost-model monotonicity.

use deepspeed_inference::kernels::cost::{gemm_policy, GemmImpl};
use deepspeed_inference::kernels::fusion::{fuse, FusionPlan};
use deepspeed_inference::kernels::graph::transformer_layer_ops;
use deepspeed_inference::kernels::ops;
use deepspeed_inference::kernels::quant::QuantizedMatrix;
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::moe::gating::top_k_gating;
use deepspeed_inference::moe::layer::{flat_exchange, pcc_exchange};
use deepspeed_inference::moe::routing::{
    dispatch_dense, dispatch_sparse, gather_dense, gather_sparse,
};
use deepspeed_inference::parallel::pipeline::{PipelineSchedule, PipelineSpec};
use deepspeed_inference::sim::collectives::{Collectives, CommGroup};
use deepspeed_inference::sim::engine::{Resource, TaskGraph};
use deepspeed_inference::sim::hw::{ClusterSpec, DType};
use deepspeed_inference::sim::topology::Topology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random task DAGs: the greedy scheduler always produces a schedule
    /// that honours dependencies and never double-books a resource.
    #[test]
    fn task_graph_schedules_are_valid(
        durations in prop::collection::vec(0.0f64..10.0, 1..40),
        resources in prop::collection::vec(0usize..4, 1..40),
        dep_skip in prop::collection::vec(1usize..5, 1..40),
    ) {
        let n = durations.len().min(resources.len()).min(dep_skip.len());
        let mut g = TaskGraph::new();
        for i in 0..n {
            let mut deps = Vec::new();
            if i >= dep_skip[i] {
                deps.push(i - dep_skip[i]);
            }
            g.add(format!("t{i}"), Resource::Compute(resources[i]), durations[i], &deps);
        }
        let s = g.simulate();
        prop_assert!(s.validate(&g).is_ok());
        // Makespan is at least the longest single task and at most the sum.
        let max = durations[..n].iter().copied().fold(0.0, f64::max);
        let sum: f64 = durations[..n].iter().sum();
        prop_assert!(s.makespan >= max - 1e-9);
        prop_assert!(s.makespan <= sum + 1e-9);
    }

    /// The inference token-queue schedule never loses to the training-style
    /// drain, for any geometry.
    #[test]
    fn inference_schedule_dominates(
        stages in 1usize..6,
        mbs in 1usize..8,
        tokens in 1usize..12,
        gen_time in 0.5e-3f64..5e-3,
    ) {
        let spec = PipelineSpec {
            stages,
            prompt_microbatches: mbs,
            gen_microbatches: mbs,
            gen_tokens: tokens,
            stage_prompt_time_full: 20e-3,
            stage_gen_time: gen_time,
            microbatch_overhead: 0.05e-3,
            p2p_time: 0.02e-3,
        };
        let train = spec.run(PipelineSchedule::TrainingStyle);
        let queue = spec.run(PipelineSchedule::InferenceQueue);
        prop_assert!(queue.total_latency <= train.total_latency + 1e-9);
    }

    /// Gating invariants for arbitrary logits: at most top_k assignments per
    /// token, distinct experts per token, capacity never exceeded, tables
    /// mutually inverse, weights normalized over kept assignments.
    #[test]
    fn gating_invariants(
        tokens in 1usize..48,
        experts in 1usize..12,
        capacity in 1usize..16,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let k = k.min(experts);
        let logits = Tensor::randn(&[tokens, experts], 1.0, seed);
        let d = top_k_gating(&logits, k, capacity);
        for e in 0..experts {
            prop_assert!(d.expert_load(e) <= capacity);
        }
        let mut assigned = 0usize;
        for (t, asgs) in d.token_to_expert.iter().enumerate() {
            prop_assert!(asgs.len() <= k);
            let mut seen = std::collections::HashSet::new();
            for a in asgs {
                prop_assert!(seen.insert(a.expert), "duplicate expert for token {t}");
                prop_assert_eq!(d.expert_to_token[a.expert][a.slot], Some(t));
            }
            if !asgs.is_empty() {
                let sum: f32 = asgs.iter().map(|a| a.weight).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
            assigned += asgs.len();
        }
        let table_entries: usize = (0..experts).map(|e| d.expert_load(e)).sum();
        prop_assert_eq!(assigned, table_entries);
    }

    /// The dense mapping-table routing rewrite is einsum-equivalent for any
    /// gating outcome (the Sec. V-C correctness claim).
    #[test]
    fn routing_rewrite_equivalence(
        tokens in 1usize..24,
        experts in 1usize..8,
        capacity in 1usize..8,
        seed in 0u64..500,
    ) {
        let h = 8;
        let xs = Tensor::randn(&[tokens, h], 1.0, seed);
        let logits = Tensor::randn(&[tokens, experts], 1.0, seed + 1);
        let gate = top_k_gating(&logits, 1.min(experts), capacity);
        let ds = dispatch_sparse(&xs, &gate);
        let dd = dispatch_dense(&xs, &gate);
        prop_assert!(ds.allclose(&dd, 1e-5));
        let eo = Tensor::randn(&[experts * capacity, h], 1.0, seed + 2);
        let gs = gather_sparse(&eo, &gate);
        let gd = gather_dense(&eo, &gate);
        prop_assert!(gs.allclose(&gd, 1e-4));
    }

    /// PCC communication schedule delivers byte-identical state to the flat
    /// all-to-all for any (groups, tp, chunk) geometry.
    #[test]
    fn pcc_exchange_equivalence(
        groups in 1usize..6,
        l in 1usize..5,
        chunk_units in 1usize..6,
        seed in 0u64..500,
    ) {
        let chunk = chunk_units * l; // must split across tp ranks
        let data: Vec<Vec<f32>> = (0..groups)
            .map(|j| Tensor::randn(&[groups * chunk], 1.0, seed + j as u64).into_data())
            .collect();
        prop_assert_eq!(flat_exchange(&data, l), pcc_exchange(&data, l));
    }

    /// Functional all-reduce is equivalent to an explicit elementwise sum,
    /// and idempotent under re-reduction scaling.
    #[test]
    fn allreduce_is_sum(
        ranks in 1usize..6,
        len in 1usize..32,
        seed in 0u64..500,
    ) {
        let bufs: Vec<Vec<f32>> = (0..ranks)
            .map(|r| Tensor::randn(&[len], 1.0, seed + r as u64).into_data())
            .collect();
        let mut expect = vec![0.0f32; len];
        for b in &bufs {
            for (e, x) in expect.iter_mut().zip(b) {
                *e += x;
            }
        }
        let mut g = CommGroup::new(bufs);
        g.allreduce_sum();
        for b in &g.buffers {
            for (got, want) in b.iter().zip(&expect) {
                prop_assert!((got - want).abs() < 1e-4);
            }
        }
    }

    /// Collective cost models are monotone in message size and group size.
    #[test]
    fn collective_costs_monotone(
        bytes in 1e3f64..1e9,
        n1 in 2usize..64,
        n2 in 2usize..64,
    ) {
        let topo = Topology::new(ClusterSpec::dgx_a100(8));
        let (small, large) = (n1.min(n2), n1.max(n2));
        let g_small: Vec<usize> = (0..small).collect();
        let g_large: Vec<usize> = (0..large).collect();
        // Size monotonicity.
        let a = Collectives::allreduce(&topo, &g_small, bytes).time;
        let b = Collectives::allreduce(&topo, &g_small, bytes * 2.0).time;
        prop_assert!(b >= a);
        // Group monotonicity for all-to-all at fixed per-rank bytes.
        let x = Collectives::alltoall(&topo, &g_small, bytes).time;
        let y = Collectives::alltoall(&topo, &g_large, bytes).time;
        prop_assert!(y >= x - 1e-12);
    }

    /// INT8 quantization round-trip error is bounded by half a step for any
    /// weights/group size.
    #[test]
    fn quantization_error_bounded(
        rows in 1usize..32,
        cols in 1usize..16,
        group in 1usize..16,
        scale in 0.01f32..2.0,
        seed in 0u64..500,
    ) {
        let w = Tensor::randn(&[rows, cols], scale, seed);
        let q = QuantizedMatrix::quantize(&w, group);
        prop_assert!(w.max_abs_diff(&q.dequantize()) <= q.max_error_bound());
    }

    /// Deep-Fusion preserves FLOPs and weight traffic and never increases
    /// activation traffic, for arbitrary layer shapes.
    #[test]
    fn fusion_conserves_work(
        batch in 1usize..8,
        t_new in 1usize..4,
        extra_ctx in 0usize..64,
        heads_pow in 0u32..4,
        seed in 0u64..10, // unused shape jitter guard
    ) {
        let _ = seed;
        let heads = 1usize << heads_pow;
        let hidden = heads * 16;
        let t_ctx = t_new + extra_ctx;
        let ops = transformer_layer_ops(batch, t_new, t_ctx, hidden, heads, DType::Fp16);
        let unfused = fuse(&ops, &FusionPlan::unfused(ops.len()), DType::Fp16).unwrap();
        for plan in [FusionPlan::deepspeed_small_batch(), FusionPlan::deepspeed_large_batch()] {
            let fused = fuse(&ops, &plan, DType::Fp16).unwrap();
            let f = |ks: &[deepspeed_inference::kernels::fusion::FusedKernel]| {
                ks.iter().fold((0.0, 0.0, 0.0), |acc, k| {
                    (
                        acc.0 + k.cost.flops,
                        acc.1 + k.cost.weight_bytes,
                        acc.2 + k.cost.act_read + k.cost.act_write,
                    )
                })
            };
            let (fl_u, w_u, a_u) = f(&unfused);
            let (fl_f, w_f, a_f) = f(&fused);
            prop_assert!((fl_u - fl_f).abs() < 1.0);
            prop_assert!((w_u - w_f).abs() < 1.0);
            prop_assert!(a_f <= a_u + 1.0);
        }
    }

    /// GEMM efficiency curves stay in (0, 1) and SBI's bandwidth advantage
    /// holds through the DeepSpeed selection crossover.
    #[test]
    fn gemm_policy_sane(m in 1.0f64..100000.0) {
        for imp in [GemmImpl::CuBlas, GemmImpl::Sbi, GemmImpl::CutlassInt8] {
            let bw = gemm_policy::bw_efficiency(imp, m);
            let ce = gemm_policy::compute_efficiency(imp, m);
            prop_assert!(bw > 0.0 && bw < 1.0);
            prop_assert!(ce > 0.0 && ce < 1.0);
        }
        if m <= 32.0 {
            prop_assert!(
                gemm_policy::bw_efficiency(GemmImpl::Sbi, m)
                    > gemm_policy::bw_efficiency(GemmImpl::CuBlas, m)
            );
        }
    }

    /// Attention over a random causal context: each output row is a convex
    /// combination of value rows (bounded by the value extrema).
    #[test]
    fn attention_outputs_within_value_hull(
        t in 1usize..6,
        heads_pow in 0u32..3,
        seed in 0u64..200,
    ) {
        let heads = 1usize << heads_pow;
        let h = heads * 8;
        let q = Tensor::randn(&[t, h], 1.0, seed);
        let k = Tensor::randn(&[t, h], 1.0, seed + 1);
        let v = Tensor::randn(&[t, h], 1.0, seed + 2);
        let o = ops::attention(&q, &k, &v, heads, 0);
        // Per head-dim column, outputs lie within [min, max] of the values.
        for col in 0..h {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for r in 0..t {
                lo = lo.min(v.row(r)[col]);
                hi = hi.max(v.row(r)[col]);
            }
            for r in 0..t {
                let x = o.row(r)[col];
                prop_assert!(x >= lo - 1e-4 && x <= hi + 1e-4);
            }
        }
    }
}
