//! Property tests for the extension subsystems: tiled fused execution,
//! streaming weight store, pipeline-parallel functional execution,
//! checkpoints, precision emulation, sampling, and the serving simulator.

use deepspeed_inference::kernels::exec::{layer_forward_tiled, layer_forward_whole, LayerTensors};
use deepspeed_inference::kernels::fusion::FusionPlan;
use deepspeed_inference::kernels::precision::{to_bf16, to_fp16};
use deepspeed_inference::kernels::tensor::Tensor;
use deepspeed_inference::model::io;
use deepspeed_inference::model::reference::{GptModel, KvCache};
use deepspeed_inference::model::sampling::{Sampler, SamplerConfig};
use deepspeed_inference::model::zoo;
use deepspeed_inference::parallel::pipeline::PipelineSchedule;
use deepspeed_inference::parallel::pp_exec::PipelinedModel;
use deepspeed_inference::zero::store::streamed_forward;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled execution of fused regions equals whole-tensor execution for
    /// any legal plan, tile width, and layer geometry.
    #[test]
    fn tiled_fusion_equivalence(
        tokens in 1usize..10,
        heads_pow in 0u32..3,
        tile in 1usize..6,
        seed in 0u64..300,
        plan_idx in 0usize..4,
    ) {
        let heads = 1usize << heads_pow;
        let hidden = heads * 8;
        let w = LayerTensors::random(hidden, heads, seed);
        let x = Tensor::randn(&[tokens, hidden], 1.0, seed + 1);
        let plan = match plan_idx {
            0 => FusionPlan::unfused(12),
            1 => FusionPlan::deepspeed_small_batch(),
            2 => FusionPlan::deepspeed_large_batch(),
            _ => FusionPlan::faster_transformer(),
        };
        let want = layer_forward_whole(&w, &x);
        let got = layer_forward_tiled(&w, &x, &plan, tile, false);
        prop_assert!(
            got.allclose(&want, 1e-3),
            "diff {}", got.max_abs_diff(&want)
        );
    }

    /// The streaming weight store yields reference-identical logits for any
    /// prefetch depth and prompt.
    #[test]
    fn streamed_forward_equivalence(
        prefetch in 0usize..5,
        len in 1usize..8,
        seed in 0u64..100,
    ) {
        let m = GptModel::random(zoo::tiny(3), seed);
        let ids: Vec<usize> = (0..len).map(|i| (i * 7 + seed as usize) % 101).collect();
        let mut cache = KvCache::new(3, 64);
        let (got, stats) = streamed_forward(&m, &ids, &mut cache, prefetch);
        let want = m.forward_full(&ids);
        prop_assert!(got.allclose(&want, 1e-4));
        prop_assert_eq!(stats.fetches, 3);
        prop_assert!(stats.peak_resident <= prefetch + 1);
    }

    /// Pipeline-parallel scheduled execution equals unpipelined generation
    /// for any stage count / micro-batch mix.
    #[test]
    fn pp_exec_equivalence(
        stages_idx in 0usize..3,
        mbs in 1usize..4,
        gen in 1usize..4,
        seed in 0u64..50,
    ) {
        let stages = [1usize, 2, 4][stages_idx];
        let m = GptModel::random(zoo::tiny(4), seed);
        let pm = PipelinedModel::new(&m, stages);
        let prompts: Vec<Vec<usize>> = (0..mbs)
            .map(|i| vec![(i * 3 + 1) % 101, (i * 5 + 2) % 101])
            .collect();
        let got = pm.generate_scheduled(&prompts, gen, PipelineSchedule::InferenceQueue);
        for (i, p) in prompts.iter().enumerate() {
            prop_assert_eq!(&got[i], &m.generate(p, gen), "mb {}", i);
        }
    }

    /// Checkpoints round-trip byte-exactly and every strict prefix is
    /// rejected without panicking.
    #[test]
    fn checkpoint_roundtrip_and_truncation(
        layers in 1usize..4,
        seed in 0u64..100,
        cut_frac in 0.01f64..0.999,
    ) {
        let m = GptModel::random(zoo::tiny(layers), seed);
        let bytes = io::to_bytes(&m);
        let back = io::from_bytes(&bytes).expect("roundtrip");
        prop_assert!(back.wte.allclose(&m.wte, 0.0));
        prop_assert_eq!(back.layers.len(), layers);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(io::from_bytes(&bytes[..cut]).is_err());
    }

    /// FP16 rounding: bounded error, idempotent, monotone.
    #[test]
    fn fp16_rounding_properties(a in -6e4f32..6e4, b in -6e4f32..6e4) {
        for v in [a, b] {
            let r = to_fp16(v);
            prop_assert_eq!(to_fp16(r), r, "idempotent");
            if v.abs() > 1e-4 {
                prop_assert!(((r - v) / v).abs() <= 1.0 / 1024.0, "v={v} r={r}");
            }
            let rb = to_bf16(v);
            prop_assert_eq!(to_bf16(rb), rb);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(to_fp16(lo) <= to_fp16(hi), "monotone");
    }

    /// Sampling with any filter always returns a token the filter admits,
    /// and greedy equals temperature→0 behavior.
    #[test]
    fn sampler_support_and_greedy(
        vocab in 2usize..20,
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        let logits: Vec<f32> = (0..vocab).map(|i| ((i * 37 + seed as usize) % 11) as f32 * 0.3).collect();
        let k = k.min(vocab);
        let mut s = Sampler::new(SamplerConfig::top_k(k, 0.8), seed);
        // Determine the admissible set: the k highest logits.
        let mut idx: Vec<usize> = (0..vocab).collect();
        idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap().then(a.cmp(&b)));
        let admissible: std::collections::HashSet<usize> = idx[..k].iter().copied().collect();
        for _ in 0..32 {
            let t = s.sample(&logits);
            prop_assert!(admissible.contains(&t), "token {} outside top-{}", t, k);
        }
        let mut greedy = Sampler::new(SamplerConfig::greedy(), seed);
        prop_assert_eq!(greedy.sample(&logits), idx[0]);
    }
}

#[test]
fn serving_invariants() {
    use deepspeed_inference::serving::{simulate_serving, BatchPolicy, Workload};
    use deepspeed_inference::{ClusterSpec, EngineConfig, InferenceEngine};
    let engine = InferenceEngine::new(EngineConfig::deepspeed(
        zoo::dense_by_name("GPT-2-1.5B").unwrap(),
        ClusterSpec::dgx_a100(1),
        1,
        1,
    ));
    let exec_floor = engine.generation(1, 64, 4).total_latency;
    for (rate, max_batch) in [(5.0, 1usize), (50.0, 4), (500.0, 32)] {
        let r = simulate_serving(
            &engine,
            &Workload {
                arrival_rate: rate,
                prompt: 64,
                gen: 4,
                requests: 120,
                seed: 3,
            },
            BatchPolicy {
                max_batch,
                max_wait: 0.01,
            },
        );
        assert_eq!(r.completed, 120);
        assert!(r.p50 <= r.p95 && r.p95 <= r.p99);
        // Nothing completes faster than a batch-1 execution.
        assert!(r.p50 >= exec_floor * 0.99, "p50 {} below floor {exec_floor}", r.p50);
        assert!(r.mean_batch >= 1.0 && r.mean_batch <= max_batch as f64);
        assert!(r.utilization <= 1.0 + 1e-9);
    }
}
