//! Simulation-substrate integration: schedules, traces, offload timelines,
//! and hardware what-ifs interacting across crates.

use deepspeed_inference::parallel::offload::OffloadSpec;
use deepspeed_inference::parallel::pipeline::{PipelineSchedule, PipelineSpec};
use deepspeed_inference::sim::collectives::Collectives;
use deepspeed_inference::sim::hw::{ClusterSpec, NodeSpec};
use deepspeed_inference::sim::topology::Topology;
use deepspeed_inference::sim::trace::{chrome_trace, gantt};
use deepspeed_inference::whatif::{scale_cluster, Knob};
use deepspeed_inference::zoo;
use deepspeed_inference::{EngineConfig, InferenceEngine};

fn spec() -> PipelineSpec {
    PipelineSpec {
        stages: 4,
        prompt_microbatches: 8,
        gen_microbatches: 4,
        gen_tokens: 10,
        stage_prompt_time_full: 20e-3,
        stage_gen_time: 1e-3,
        microbatch_overhead: 0.05e-3,
        p2p_time: 0.02e-3,
    }
}

#[test]
fn schedules_export_valid_traces() {
    for sched in [PipelineSchedule::TrainingStyle, PipelineSchedule::InferenceQueue] {
        let (graph, _) = spec().build(sched);
        let s = graph.simulate();
        let trace = chrome_trace(&graph, &s);
        let parsed: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = parsed.as_array().unwrap();
        let complete = events.iter().filter(|e| e["ph"] == "X").count();
        assert_eq!(complete, graph.len());
        // Every event's extent lies inside the makespan.
        for e in events.iter().filter(|e| e["ph"] == "X") {
            let ts = e["ts"].as_f64().unwrap();
            let dur = e["dur"].as_f64().unwrap();
            assert!(ts >= -1e-6 && ts + dur <= s.makespan * 1e6 + 1e-3);
        }
        // The Gantt chart covers all compute lanes.
        let chart = gantt(&graph, &s, 60);
        assert!(chart.lines().count() > 4);
    }
}

#[test]
fn queue_schedule_keeps_stages_busier_in_trace() {
    let (g_train, _) = spec().build(PipelineSchedule::TrainingStyle);
    let (g_queue, _) = spec().build(PipelineSchedule::InferenceQueue);
    let s_train = g_train.simulate();
    let s_queue = g_queue.simulate();
    use deepspeed_inference::sim::engine::Resource;
    for stage in 0..4 {
        let u_train = s_train.utilization(&g_train, Resource::Compute(stage));
        let u_queue = s_queue.utilization(&g_queue, Resource::Compute(stage));
        assert!(
            u_queue >= u_train - 1e-9,
            "stage {stage}: queue {u_queue:.2} < train {u_train:.2}"
        );
    }
}

#[test]
fn offload_timeline_validates_and_responds_to_pcie() {
    let base = OffloadSpec {
        layers: 12,
        layer_compute: 1e-3,
        kv_bytes_per_layer: 30e6,
        pcie_bw: 25e9,
        shared_link: true,
        odd_even_schedule: true,
    };
    let r1 = base.run();
    // Doubling PCIe bandwidth can only help.
    let r2 = OffloadSpec {
        pcie_bw: 50e9,
        ..base.clone()
    }
    .run();
    assert!(r2.step_time <= r1.step_time + 1e-12);
    // Zero KV = pure compute.
    let r0 = OffloadSpec {
        kv_bytes_per_layer: 0.0,
        ..base
    }
    .run();
    assert!((r0.step_time - r0.compute_time).abs() < 1e-9);
}

#[test]
fn collectives_respect_topology_upgrades() {
    let base = Topology::new(ClusterSpec::dgx_a100(2));
    let fast = Topology::new(scale_cluster(&base.cluster, Knob::InterBandwidth, 4.0));
    let group: Vec<usize> = (0..16).collect();
    let b = Collectives::allreduce(&base, &group, 1e9).time;
    let f = Collectives::allreduce(&fast, &group, 1e9).time;
    assert!(f < b, "faster network must speed cross-node all-reduce");
    // Intra-node collectives are unaffected by the network knob.
    let intra: Vec<usize> = (0..8).collect();
    let bi = Collectives::allreduce(&base, &intra, 1e9).time;
    let fi = Collectives::allreduce(&fast, &intra, 1e9).time;
    assert!((bi - fi).abs() < 1e-15);
}

#[test]
fn engine_latency_monotone_in_every_hardware_knob() {
    // Improving any knob never hurts the engine's prediction.
    let model = zoo::dense_by_name("GPT-NeoX-20B").unwrap();
    let base_cluster = ClusterSpec::dgx_a100(2);
    let base = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), base_cluster.clone(), 8, 2))
        .generation(8, 128, 8)
        .total_latency;
    for knob in deepspeed_inference::whatif::ALL_KNOBS {
        let cluster = scale_cluster(&base_cluster, knob, 2.0);
        let t = InferenceEngine::new(EngineConfig::deepspeed(model.clone(), cluster, 8, 2))
            .generation(8, 128, 8)
            .total_latency;
        assert!(t <= base * (1.0 + 1e-9), "{knob:?}: {t} > {base}");
    }
}

#[test]
fn h100_cluster_strictly_faster_than_a100() {
    // The post-paper what-if: same model, same mapping, newer hardware.
    let model = zoo::dense_by_name("LM-175B").unwrap();
    let a100 = InferenceEngine::new(EngineConfig::deepspeed(
        model.clone(),
        ClusterSpec::dgx_a100(2),
        8,
        2,
    ))
    .generation(8, 128, 8)
    .total_latency;
    let h100 = InferenceEngine::new(EngineConfig::deepspeed(
        model,
        ClusterSpec::dgx_h100(2),
        8,
        2,
    ))
    .generation(8, 128, 8)
    .total_latency;
    assert!(
        h100 < a100 / 1.6,
        "H100 {h100:.4}s should be well under A100 {a100:.4}s"
    );
}

#[test]
fn shared_pcie_nodes_penalize_naive_offload_only() {
    // The lambda workstation (dedicated links) should see no odd/even
    // effect; a DGX (shared pairs) should.
    let mk = |node: &NodeSpec, odd_even: bool| OffloadSpec {
        layers: 16,
        layer_compute: 1e-3,
        kv_bytes_per_layer: 22e6,
        pcie_bw: node.pcie.bw,
        shared_link: node.pcie_shared_pairs,
        odd_even_schedule: odd_even,
    }
    .run()
    .step_time;
    let dgx = NodeSpec::dgx_a100();
    assert!(mk(&dgx, true) < mk(&dgx, false));
    let lambda = NodeSpec::lambda_a6000();
    assert!((mk(&lambda, true) - mk(&lambda, false)).abs() < 1e-9);
}
