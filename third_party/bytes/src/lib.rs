//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The workspace only reads from `&[u8]` cursors and writes into `Vec<u8>`,
//! so this stand-in provides exactly the [`Buf`] / [`BufMut`] surface the
//! checkpoint codec uses, little-endian accessors included.

/// Read-side cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The readable contiguous byte run at the cursor.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f32_le(1.5);
        out.put_slice(b"abc");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), 1 << 40);
        assert_eq!(buf.get_f32_le(), 1.5);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert!(!buf.has_remaining());
    }

    #[test]
    fn advance_and_chunk() {
        let data = [1u8, 2, 3, 4];
        let mut buf: &[u8] = &data;
        buf.advance(2);
        assert_eq!(buf.chunk(), &[3, 4]);
        assert_eq!(buf.remaining(), 2);
    }
}
