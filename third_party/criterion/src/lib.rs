//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the harness surface the workspace's `harness = false` benches
//! use: `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a simple calibrated wall-clock loop (warm-up, then
//! enough iterations to fill a short window) printing mean time per
//! iteration — no statistics engine, plots, or reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter`.
    ns_per_iter: f64,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: time a single call, then choose an
        // iteration count that fits the measurement window.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time;
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.iters = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        let (val, unit) = humanize_ns(b.ns_per_iter);
        println!(
            "{}/{}: {:.3} {} per iter ({} iters)",
            self.name, id, val, unit, b.iters
        );
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep runs short: these benches exist to be runnable, and the
        // fleet-wide test command runs on a small machine.
        let ms = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50u64);
        Criterion {
            measurement_time: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            measurement_time,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).run(name, f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("t");
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.bench_with_input(BenchmarkId::from_parameter(42), &3usize, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("64x64").to_string(), "64x64");
    }
}
