//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the shape this workspace uses: the `proptest!` block macro with
//! an optional `#![proptest_config(...)]` header, range strategies over the
//! numeric primitives, `prop::collection::vec`, `Just`, and the
//! `prop_assert!` / `prop_assert_eq!` family. Case generation is a
//! deterministic SplitMix64 stream seeded from the test name, so failures
//! reproduce across runs. Shrinking is not implemented: a failing case
//! reports its inputs via the assertion message instead.

use std::fmt;
use std::ops::Range;

/// Per-test configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic generator behind case synthesis (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Seed a [`TestRng`] from a test name (FNV-1a), so each property gets a
/// stable, independent stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h)
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, isize);

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`prop::collection::vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{Range, VecStrategy};

        /// `prop::collection::vec(element_strategy, size_range)`.
        pub fn vec<S>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                format!($($fmt)*)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// The `proptest!` block macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]`-compatible zero-arg fn that runs `cases` synthesized
/// inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{} [{}]: {}",
                            stringify!($name), __case + 1, __cfg.cases, __inputs, __e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let mut c = crate::test_rng("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..1000 {
            let f = Strategy::generate(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
            let i = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_rng("vecs");
        let s = prop::collection::vec(0.0f64..1.0, 2..7);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated args obey strategies, asserts pass.
        #[test]
        fn macro_smoke(
            n in 1usize..10,
            x in -1.0f32..1.0,
            xs in prop::collection::vec(0u64..100, 1..5),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x), "x = {x}");
            prop_assert!(xs.iter().all(|&v| v < 100));
            prop_assert_ne!(xs.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..3) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }
}
