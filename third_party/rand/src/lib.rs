//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network and no registry cache, so the real
//! `rand` cannot be fetched. This vendored stand-in implements exactly the
//! surface this workspace uses — [`RngCore`], [`SeedableRng`], and
//! `distributions::{Distribution, Uniform}` — with the same call signatures.
//! Streams are deterministic per seed but are **not** bit-identical to the
//! upstream crate; nothing in the workspace depends on upstream streams.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: a small, fast, statistically solid 64-bit generator
    /// (Steele et al., "Fast splittable pseudorandom number generators").
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(state: u64) -> Self {
            SplitMix64 { state }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: Copy + PartialOrd> Uniform<X> {
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            self.low + (self.high - self.low) * rng.unit_f32()
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * rng.unit_f64()
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    let span = (self.high - self.low) as u64;
                    // Multiply-shift bounded sampling (Lemire); bias is
                    // negligible for the span sizes used here.
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.low + v as $t
                }
            }
        )*};
    }
    uniform_int!(usize, u64, u32, i64);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SplitMix64;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(1);
        let mut c = SplitMix64::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn uniform_f32_in_range() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let d = Uniform::new(-1.0f32, 1.0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_f64_covers_mass() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let d = Uniform::new(0.0f64, 1.0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_usize_in_range() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let d = Uniform::new(5usize, 10);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((5..10).contains(&v));
        }
    }
}
