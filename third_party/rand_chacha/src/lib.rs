//! Offline, API-compatible subset of `rand_chacha`: a real ChaCha8 keystream
//! generator behind the [`ChaCha8Rng`] name.
//!
//! Deterministic per seed, `Clone`/`Debug` like the upstream type. The
//! keystream does **not** match upstream `rand_chacha` word-for-word (the
//! seed expansion differs); the workspace only relies on per-seed
//! determinism and statistical quality, both of which ChaCha8 provides.

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&self.state) {
            *w = w.wrapping_add(*s);
        }
        self.block = working;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key with SplitMix64, matching
        // how upstream rand seeds full-width keys from small seeds.
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&key);
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.5, "bit balance {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
