//! Offline, API-compatible subset of `rayon`.
//!
//! The build environment has no network access, so the real `rayon` cannot
//! be fetched. This stand-in keeps the *parallel-iterator API shape* used by
//! the workspace (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter`, plus the `map`/`zip`/`enumerate`/`for_each`/`sum`/
//! `collect` combinators) but executes sequentially. The deployment target
//! of this reproduction is a single-core container, where a work-stealing
//! pool only adds overhead; on a multi-core host, swapping this crate back
//! to upstream rayon re-enables real data parallelism with no source
//! changes in the workspace.

/// A "parallel" iterator: a thin wrapper over a sequential iterator that
/// mirrors rayon's combinator surface.
pub struct ParIter<I>(pub(crate) I);

impl<I: Iterator> ParIter<I> {
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        compare: F,
    ) -> Option<I::Item> {
        self.0.max_by(compare)
    }
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item;
    type SeqIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type SeqIter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.into_iter())
    }
}

/// Shared-slice views (rayon's `ParallelSlice` + `IntoParallelRefIterator`).
pub trait ParallelSlice<T> {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter(self.chunks(size))
    }

    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

/// Mutable-slice views (rayon's `ParallelSliceMut` + `IntoParallelRefMutIterator`).
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter(self.chunks_mut(size))
    }

    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

/// Run two closures "in parallel" (sequentially here), returning both
/// results — rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_zip_for_each() {
        let mut out = vec![0i32; 6];
        let src = [1i32, 2, 3, 4, 5, 6];
        out.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(o, s)| {
                for (a, b) in o.iter_mut().zip(s) {
                    *a = b * 10;
                }
            });
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn into_par_iter_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_iter_mut_and_sum() {
        let mut v = [1.0f32, 2.0, 3.0];
        v.par_iter_mut().for_each(|x| *x *= 2.0);
        let s: f32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 12.0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
