//! Offline, API-compatible subset of `serde`.
//!
//! The build environment cannot fetch crates, so the real `serde` stack is
//! unavailable. This stand-in keeps the parts the workspace uses: the
//! `Serialize`/`Deserialize` traits (reshaped around a JSON-like [`Value`]
//! tree instead of serde's visitor machinery), derive macros (re-exported
//! from the companion `serde_derive` proc-macro crate), and the conversions
//! `serde_json` needs. Derived impls produce externally-tagged enums and
//! plain field-name objects, matching serde's default representations.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object fields keep insertion order, matching
/// struct declaration order like serde_json's default.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

// ---- Serialize impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    // Format-then-parse keeps the shortest decimal representation of the
    // f32 (0.1f32 -> 0.1, not 0.10000000149…).
    fn to_value(&self) -> Value {
        Value::F64(format!("{self}").parse().unwrap_or(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, like tests expect of JSON maps.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls -----------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| DeError::new(format!(
                        "expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| DeError::new(format!(
                        "expected {}, got {v:?}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new(format!("expected f64, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::new(format!("expected f32, got {v:?}")))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 2-tuple array"))?;
        if a.len() != 2 {
            return Err(DeError::new(format!("expected 2 elements, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::new("expected 3-tuple array"))?;
        if a.len() != 3 {
            return Err(DeError::new(format!("expected 3 elements, got {}", a.len())));
        }
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?, C::from_value(&a[2])?))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_index_and_compare() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x".into())),
            ("n".into(), Value::U64(3)),
        ]);
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&0.1f32.to_value()).unwrap(), 0.1);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let pair: (usize, usize) = Deserialize::from_value(&(1usize, 2usize).to_value()).unwrap();
        assert_eq!(pair, (1, 2));
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1.5f64, -2.0, 3.25];
        let got: Vec<f64> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(got, xs);
    }
}
