//! Derive macros for the vendored offline `serde` subset.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly
//! from the `proc_macro::TokenStream` and the impl is emitted as a source
//! string. Supports the shapes this workspace uses: structs with named
//! fields, tuple structs, and enums with unit / tuple / struct variants
//! (externally tagged, matching serde's default representation). Generic
//! types and `#[serde(...)]` attributes are intentionally unsupported and
//! panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Number of positional fields.
    TupleStruct(usize),
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip a leading `#[...]` attribute if present; returns whether one was
/// consumed.
fn skip_attr(tokens: &[TokenTree], pos: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            *pos += 1;
            // Optional `!` for inner attributes (not expected, but harmless).
            if let Some(TokenTree::Punct(p2)) = tokens.get(*pos) {
                if p2.as_char() == '!' {
                    *pos += 1;
                }
            }
            if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                *pos += 1;
            }
            return true;
        }
    }
    false
}

/// Skip `pub`, `pub(crate)`, `pub(in …)`.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(tt) if is_ident(tt, "pub")) {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Parenthesis {
                *pos += 1;
            }
        }
    }
}

/// Parse named fields inside a brace group: `vis name: Type, ...`.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        skip_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected ':' after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(pos) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count positional fields in a paren group (top-level commas + 1,
/// ignoring a trailing comma).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for (i, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < tokens.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        while skip_attr(&tokens, &mut pos) {}
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                pos += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                pos += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip to the comma separating variants (covers `= discriminant`).
        while let Some(tt) = tokens.get(pos) {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push((name, shape));
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    while skip_attr(&tokens, &mut pos) {}
    skip_vis(&tokens, &mut pos);
    let is_enum = match tokens.get(pos) {
        Some(tt) if is_ident(tt, "struct") => false,
        Some(tt) if is_ident(tt, "enum") => true,
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let shape = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Shape::Enum(parse_enum_variants(g))
            } else {
                Shape::Struct(parse_named_fields(g))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Shape::TupleStruct(count_tuple_fields(g))
        }
        other => panic!("serde_derive: unsupported item body for `{name}`: {other:?}"),
    };
    (name, shape)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\
                 {pushes} ::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let binders = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         __v.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {name}\"))?;\
                 if __a.len() != {n} {{ return Err(::serde::DeError::new(\
                 \"wrong tuple arity for {name}\")); }}\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "if let Some(__inner) = __v.get(\"{v}\") {{ \
                         return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)); }}"
                    )),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        Some(format!(
                            "if let Some(__inner) = __v.get(\"{v}\") {{ \
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array for {name}::{v}\"))?;\
                             if __a.len() != {n} {{ return Err(::serde::DeError::new(\
                             \"wrong arity for {name}::{v}\")); }}\
                             return Ok({name}::{v}({})); }}",
                            inits.join(", ")
                        ))
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "if let Some(__inner) = __v.get(\"{v}\") {{ \
                             return Ok({name}::{v} {{ {} }}); }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(__s) = __v.as_str() {{ \
                 match __s {{ {unit_arms} _ => {{}} }} }}\
                 {tagged_arms}\
                 Err(::serde::DeError::new(format!(\
                 \"no variant of {name} matches {{__v:?}}\")))"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde_derive: generated Deserialize impl must parse")
}
