//! Offline, API-compatible subset of `serde_json`: serialization of the
//! vendored [`serde::Value`] tree to JSON text, a recursive-descent JSON
//! parser, and the `to_string` / `to_string_pretty` / `from_str` entry
//! points the workspace uses.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

/// Parse or serialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- Serialization ---------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Integral floats print with a trailing `.0` so they survive a
            // round-trip as floats, matching serde_json.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        // JSON has no NaN/Inf; serde_json errors, we emit null.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => number_into(out, *n),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// ---- Parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|v| Value::I64(-v))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

/// Parse JSON text into any `Deserialize` type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let text = r#"{"name":"x","n":3,"xs":[1.5,-2,true,null],"nested":{"a":"b"}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["xs"][0].as_f64(), Some(1.5));
        assert_eq!(v["xs"][1].as_i64(), Some(-2));
        assert_eq!(v["nested"]["a"], "b");
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_output_parses() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":0.25}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd".into());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&3u64).unwrap(), "3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1,2,]x").is_err());
    }
}
